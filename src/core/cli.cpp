#include "core/cli.hpp"

#include <stdexcept>

namespace mtm {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw std::invalid_argument("unrecognized argument: '" + arg +
                                  "' (expected --key=value or --flag)");
    }
    const std::size_t eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq == std::string::npos) {
      key = arg.substr(2);
    } else {
      key = arg.substr(2, eq - 2);
      if (key.empty()) {
        throw std::invalid_argument("empty option name in '" + arg + "'");
      }
      value = arg.substr(eq + 1);
    }
    // A repeated option is contradictory: one occurrence would silently win,
    // and which one is a map-implementation detail the user cannot see.
    if (values_.count(key) != 0) {
      throw std::invalid_argument("duplicate option --" + key);
    }
    values_[key] = std::move(value);
  }
  for (const auto& [key, value] : values_) consumed_[key] = false;
}

const std::string* CliArgs::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  consumed_[key] = true;
  return &it->second;
}

bool CliArgs::has(const std::string& key) const { return find(key) != nullptr; }

std::uint32_t CliArgs::get_u32(const std::string& key,
                               std::uint32_t fallback) const {
  return static_cast<std::uint32_t>(get_u64(key, fallback));
}

std::uint64_t CliArgs::get_u64(const std::string& key,
                               std::uint64_t fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument("trailing chars");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects an unsigned integer, got '" +
                                *raw + "'");
  }
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  try {
    std::size_t pos = 0;
    const double value = std::stod(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument("trailing chars");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" + *raw +
                                "'");
  }
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  if (raw->empty() || *raw == "true" || *raw == "1") return true;
  if (*raw == "false" || *raw == "0") return false;
  throw std::invalid_argument("--" + key + " expects true/false/1/0, got '" +
                              *raw + "'");
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  const std::string* raw = find(key);
  return raw == nullptr ? fallback : *raw;
}

void CliArgs::check_unused() const {
  for (const auto& [key, used] : consumed_) {
    if (!used) {
      throw std::invalid_argument("unknown option --" + key);
    }
  }
}

}  // namespace mtm
