// Statistical properties of the stats toolkit itself: bootstrap CIs must
// actually cover at (roughly) the nominal rate, and the log-log fitter must
// recover exponents from noisy power laws. These guard the measurement
// layer every experiment stands on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/stats.hpp"

namespace mtm {
namespace {

TEST(StatsProperties, BootstrapCoverageNearNominal) {
  // Draw 120 datasets of 60 samples from Uniform{0..99} (true mean 49.5);
  // the 90% bootstrap CI should cover the true mean in roughly 90% of
  // datasets. Allow a generous band — this is a sanity property, not a
  // calibration suite.
  Rng rng(0x5ca1e);
  int covered = 0;
  const int kDatasets = 120;
  for (int d = 0; d < kDatasets; ++d) {
    std::vector<double> data;
    for (int i = 0; i < 60; ++i) {
      data.push_back(static_cast<double>(rng.uniform(100)));
    }
    const Interval ci = bootstrap_mean_ci(
        data, 0.90, 400, derive_seed(7, {static_cast<std::uint64_t>(d)}));
    if (ci.lo <= 49.5 && 49.5 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(kDatasets * 0.78));
  EXPECT_LE(covered, static_cast<int>(kDatasets * 0.99));
}

TEST(StatsProperties, LogLogFitRecoversNoisyExponent) {
  Rng rng(0xf17);
  for (double true_exp : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    std::vector<double> xs, ys;
    for (double x = 8; x <= 512; x *= 2) {
      // Multiplicative noise in [0.8, 1.25].
      const double noise = std::exp((rng.uniform_double() - 0.5) * 0.45);
      xs.push_back(x);
      ys.push_back(2.0 * std::pow(x, true_exp) * noise);
    }
    const LinearFit fit = log_log_fit(xs, ys);
    EXPECT_NEAR(fit.slope, true_exp, 0.15) << "exponent " << true_exp;
  }
}

TEST(StatsProperties, SummaryQuantilesOrdered) {
  Rng rng(0xa07);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> data;
    const std::size_t n = 1 + rng.uniform(200);
    for (std::size_t i = 0; i < n; ++i) {
      data.push_back(rng.uniform_double() * 1000 - 500);
    }
    const Summary s = summarize(data);
    EXPECT_LE(s.min, s.p25);
    EXPECT_LE(s.p25, s.median);
    EXPECT_LE(s.median, s.p75);
    EXPECT_LE(s.p75, s.p95);
    EXPECT_LE(s.p95, s.max);
    EXPECT_GE(s.mean, s.min);
    EXPECT_LE(s.mean, s.max);
    EXPECT_GE(s.stddev, 0.0);
  }
}

TEST(StatsProperties, RunningStatsMergeAssociative) {
  Rng rng(99);
  std::vector<double> data;
  for (int i = 0; i < 90; ++i) data.push_back(rng.uniform_double() * 10);
  // ((A ∪ B) ∪ C) vs (A ∪ (B ∪ C)).
  RunningStats a1, b1, c1, a2, b2, c2;
  for (int i = 0; i < 30; ++i) {
    a1.add(data[i]);
    a2.add(data[i]);
  }
  for (int i = 30; i < 60; ++i) {
    b1.add(data[i]);
    b2.add(data[i]);
  }
  for (int i = 60; i < 90; ++i) {
    c1.add(data[i]);
    c2.add(data[i]);
  }
  a1.merge(b1);
  a1.merge(c1);
  b2.merge(c2);
  a2.merge(b2);
  EXPECT_NEAR(a1.mean(), a2.mean(), 1e-12);
  EXPECT_NEAR(a1.variance(), a2.variance(), 1e-10);
  EXPECT_EQ(a1.count(), a2.count());
}

}  // namespace
}  // namespace mtm
