#include "core/bits.hpp"

#include <gtest/gtest.h>

namespace mtm {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 63));
  EXPECT_FALSE(is_pow2((std::uint64_t{1} << 63) + 1));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(~std::uint64_t{0}), 63);
}

TEST(Bits, FloorLog2RejectsZero) {
  EXPECT_THROW(floor_log2(0), ContractError);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, BitAtMsbIndexing) {
  // value 0b1011 in width 4: positions 1..4 are 1,0,1,1 (msb first) — the
  // paper's tag convention (t[1] most significant).
  EXPECT_EQ(bit_at_msb(0b1011, 1, 4), 1);
  EXPECT_EQ(bit_at_msb(0b1011, 2, 4), 0);
  EXPECT_EQ(bit_at_msb(0b1011, 3, 4), 1);
  EXPECT_EQ(bit_at_msb(0b1011, 4, 4), 1);
}

TEST(Bits, BitAtMsbWidthOne) {
  EXPECT_EQ(bit_at_msb(0, 1, 1), 0);
  EXPECT_EQ(bit_at_msb(1, 1, 1), 1);
}

TEST(Bits, BitAtMsbBounds) {
  EXPECT_THROW(bit_at_msb(0, 0, 4), ContractError);
  EXPECT_THROW(bit_at_msb(0, 5, 4), ContractError);
  EXPECT_THROW(bit_at_msb(0, 1, 0), ContractError);
}

TEST(Bits, BitsFor) {
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(64), 6);
  EXPECT_EQ(bits_for(65), 7);
}

TEST(Bits, BitAtMsbReconstructsValue) {
  const std::uint64_t value = 0xdeadbeef;
  const int width = 32;
  std::uint64_t rebuilt = 0;
  for (int pos = 1; pos <= width; ++pos) {
    rebuilt = (rebuilt << 1) |
              static_cast<std::uint64_t>(bit_at_msb(value, pos, width));
  }
  EXPECT_EQ(rebuilt, value);
}

}  // namespace
}  // namespace mtm
