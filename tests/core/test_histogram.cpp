#include "core/histogram.hpp"

#include <gtest/gtest.h>

namespace mtm {
namespace {

TEST(Histogram, BinsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinRanges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_range(0).first, 10.0);
  EXPECT_DOUBLE_EQ(h.bin_range(0).second, 12.5);
  EXPECT_DOUBLE_EQ(h.bin_range(3).second, 20.0);
  EXPECT_THROW(h.bin_range(4), ContractError);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 4.0, 4);
  h.add_all({0.5, 1.5, 1.7, 3.9});
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, RenderShape) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.1);
  h.add(0.2);
  h.add(1.5);
  const std::string out = h.render(10);
  // Peak bin renders 10 hashes, half-size bin renders 5.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_NE(out.find(" 2"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(Histogram, RenderEmpty) {
  Histogram h(0.0, 1.0, 3);
  const std::string out = h.render();
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(Histogram, ValidatesConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractError);
  EXPECT_THROW(Histogram(1.0, 1.0, 2), ContractError);
  EXPECT_THROW(Histogram(2.0, 1.0, 2), ContractError);
}

}  // namespace
}  // namespace mtm
