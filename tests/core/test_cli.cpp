#include "core/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mtm {
namespace {

CliArgs make_args(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesKeyValues) {
  const CliArgs args = make_args({"--n=48", "--speed=0.5", "--name=mesh"});
  EXPECT_EQ(args.get_u32("n", 0), 48u);
  EXPECT_DOUBLE_EQ(args.get_double("speed", 0.0), 0.5);
  EXPECT_EQ(args.get_string("name", ""), "mesh");
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const CliArgs args = make_args({});
  EXPECT_EQ(args.get_u32("n", 7), 7u);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(args.has("anything"));
}

TEST(CliArgs, BareFlags) {
  const CliArgs args = make_args({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
}

TEST(CliArgs, RejectsPositional) {
  EXPECT_THROW(make_args({"positional"}), std::invalid_argument);
  EXPECT_THROW(make_args({"-x=1"}), std::invalid_argument);
  EXPECT_THROW(make_args({"--=5"}), std::invalid_argument);
}

TEST(CliArgs, RejectsMalformedNumbers) {
  const CliArgs args = make_args({"--n=abc", "--f=1.5x"});
  EXPECT_THROW(args.get_u32("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("f", 0), std::invalid_argument);
}

TEST(CliArgs, CheckUnusedCatchesTypos) {
  const CliArgs args = make_args({"--nodes=5", "--trails=3"});
  EXPECT_EQ(args.get_u32("nodes", 0), 5u);
  // "trails" (typo of "trials") was never consumed.
  EXPECT_THROW(args.check_unused(), std::invalid_argument);
}

TEST(CliArgs, CheckUnusedPassesWhenAllConsumed) {
  const CliArgs args = make_args({"--a=1", "--b"});
  (void)args.get_u32("a", 0);
  (void)args.has("b");
  EXPECT_NO_THROW(args.check_unused());
}

TEST(CliArgs, RejectsDuplicateOptions) {
  // A repeated option is a contradiction (which value wins?), not a merge:
  // "--crash=0.1 --crash=0.5" must die with a one-line error up front.
  EXPECT_THROW(make_args({"--n=4", "--n=5"}), std::invalid_argument);
  EXPECT_THROW(make_args({"--n=4", "--n=4"}), std::invalid_argument);
  EXPECT_THROW(make_args({"--verbose", "--verbose"}), std::invalid_argument);
  EXPECT_THROW(make_args({"--verbose", "--verbose=1"}),
               std::invalid_argument);
}

TEST(CliArgs, U64RoundTrip) {
  const CliArgs args = make_args({"--seed=12345678901234"});
  EXPECT_EQ(args.get_u64("seed", 0), 12345678901234ull);
}

TEST(CliArgs, GetBoolAcceptsFlagAndSpelledValues) {
  const CliArgs args = make_args(
      {"--bare", "--yes=true", "--one=1", "--no=false", "--zero=0"});
  EXPECT_TRUE(args.get_bool("bare", false));
  EXPECT_TRUE(args.get_bool("yes", false));
  EXPECT_TRUE(args.get_bool("one", false));
  EXPECT_FALSE(args.get_bool("no", true));
  EXPECT_FALSE(args.get_bool("zero", true));
  EXPECT_TRUE(args.get_bool("absent", true));
  EXPECT_FALSE(args.get_bool("absent", false));
  EXPECT_NO_THROW(args.check_unused());  // get_bool consumes its key
}

TEST(CliArgs, GetBoolRejectsNonBooleanValues) {
  const CliArgs args = make_args({"--flag=maybe"});
  EXPECT_THROW(args.get_bool("flag", false), std::invalid_argument);
}

}  // namespace
}  // namespace mtm
