#include "core/log.hpp"

#include <gtest/gtest.h>

namespace mtm {
namespace {

/// RAII guard restoring the global threshold after each test.
class ThresholdGuard {
 public:
  ThresholdGuard() : saved_(log_threshold()) {}
  ~ThresholdGuard() { set_log_threshold(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultThresholdIsWarn) {
  // The library must stay quiet by default (it is a library).
  ThresholdGuard guard;
  set_log_threshold(LogLevel::kWarn);
  EXPECT_EQ(log_threshold(), LogLevel::kWarn);
}

TEST(Log, ThresholdRoundTrips) {
  ThresholdGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_threshold(level);
    EXPECT_EQ(log_threshold(), level);
  }
}

TEST(Log, EmitBelowThresholdIsDropped) {
  ThresholdGuard guard;
  set_log_threshold(LogLevel::kOff);
  // Nothing observable to assert beyond "does not crash/print": capture
  // stderr via testing::internal is avoided; this exercises the early-out.
  log_emit(LogLevel::kError, "dropped");
  MTM_LOG_ERROR << "also dropped";
  SUCCEED();
}

TEST(Log, StreamSyntaxCompiles) {
  ThresholdGuard guard;
  set_log_threshold(LogLevel::kOff);
  MTM_LOG_DEBUG << "value=" << 42 << " pi=" << 3.14;
  MTM_LOG_INFO << "info";
  MTM_LOG_WARN << "warn";
  SUCCEED();
}

}  // namespace
}  // namespace mtm
