#include "core/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/assert.hpp"

namespace mtm {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1);
  t.row().cell("b").cell(22);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, DoubleFormatting) {
  Table t({"x"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.row().cell("plain").cell("has,comma");
  t.row().cell("has\"quote").cell("x");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RejectsOverflowAndIncompleteRows) {
  Table t({"only"});
  EXPECT_THROW(t.cell("no row yet"), ContractError);
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), ContractError);
  Table incomplete({"a", "b"});
  incomplete.row().cell("x");
  EXPECT_THROW(incomplete.row(), ContractError);
  EXPECT_THROW(incomplete.to_string(), ContractError);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), ContractError);
}

TEST(Table, PrintIncludesTitle) {
  Table t({"h"});
  t.row().cell("v");
  std::ostringstream os;
  t.print(os, "My Title");
  EXPECT_NE(os.str().find("== My Title =="), std::string::npos);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell(1).cell(2).cell(3);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(FormatDouble, Nan) {
  EXPECT_EQ(format_double(std::nan(""), 2), "-");
  EXPECT_EQ(format_double(1.5, 1), "1.5");
}

TEST(Table, MaybeWriteCsvWithoutEnv) {
  // No MTM_BENCH_CSV set in the test environment -> no write, returns false.
  ::unsetenv("MTM_BENCH_CSV");
  Table t({"h"});
  t.row().cell("v");
  EXPECT_FALSE(t.maybe_write_csv("test_table_tmp"));
}

}  // namespace
}  // namespace mtm
