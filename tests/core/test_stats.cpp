#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/assert.hpp"

namespace mtm {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, left, right;
  std::vector<double> data{1, 2, 3, 10, 20, 30, -5, 0.5};
  for (std::size_t i = 0; i < data.size(); ++i) {
    all.add(data[i]);
    (i < 4 ? left : right).add(data[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Quantile, Interpolates) {
  std::vector<double> sorted{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0 / 3.0), 20.0);
}

TEST(Quantile, SingleElement) {
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.3), 7.0);
}

TEST(Quantile, RejectsBadInput) {
  std::vector<double> empty;
  EXPECT_THROW(quantile_sorted(empty, 0.5), ContractError);
  std::vector<double> v{1.0};
  EXPECT_THROW(quantile_sorted(v, -0.1), ContractError);
  EXPECT_THROW(quantile_sorted(v, 1.1), ContractError);
}

TEST(Summarize, FullSummary) {
  std::vector<double> data{5, 1, 4, 2, 3};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Bootstrap, CoversTrueMean) {
  // Samples from a known distribution: the CI should cover the sample mean.
  std::vector<double> data;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    data.push_back(static_cast<double>(rng.uniform(100)));
  }
  const Summary s = summarize(data);
  const Interval ci = bootstrap_mean_ci(data, 0.95, 500, 7);
  EXPECT_LE(ci.lo, s.mean);
  EXPECT_GE(ci.hi, s.mean);
  EXPECT_LT(ci.hi - ci.lo, 20.0);  // reasonably tight for 200 samples
}

TEST(Bootstrap, Deterministic) {
  std::vector<double> data{1, 2, 3, 4, 5, 6, 7, 8};
  const Interval a = bootstrap_mean_ci(data, 0.9, 100, 42);
  const Interval b = bootstrap_mean_ci(data, 0.9, 100, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RejectsDegenerate) {
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  EXPECT_THROW(linear_fit(x, y), ContractError);
  std::vector<double> one{1};
  EXPECT_THROW(linear_fit(one, one), ContractError);
}

TEST(LogLogFit, RecoversPowerLaw) {
  // y = 3 * x^2.5
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 2.5));
  }
  const LinearFit fit = log_log_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(LogLogFit, RejectsNonPositive) {
  std::vector<double> x{1, 2};
  std::vector<double> y{0, 1};
  EXPECT_THROW(log_log_fit(x, y), ContractError);
}

}  // namespace
}  // namespace mtm
