#include "core/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mtm {
namespace {

TEST(Contracts, RequirePassesOnTrue) {
  EXPECT_NO_THROW(MTM_REQUIRE(1 + 1 == 2));
}

TEST(Contracts, RequireThrowsWithContext) {
  try {
    MTM_REQUIRE_MSG(false, "extra detail");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("extra detail"), std::string::npos);
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsureThrowsInvariant) {
  try {
    MTM_ENSURE(2 > 3);
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Contracts, ContractErrorIsLogicError) {
  EXPECT_THROW(MTM_REQUIRE(false), std::logic_error);
}

}  // namespace
}  // namespace mtm
