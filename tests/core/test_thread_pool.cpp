#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/assert.hpp"
#include "core/rng.hpp"

namespace mtm {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, RejectsInvalidConfig) {
  EXPECT_THROW(ThreadPool(0), ContractError);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractError);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsAndErrorIsClearedAfterRethrow) {
  ThreadPool pool(1);  // one worker => deterministic task order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // The stored error was consumed: the pool is clean and fully usable.
  pool.wait_idle();
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ThrowingTaskDoesNotDeadlockOrStarveOtherTasks) {
  // A throwing task must still count as completed (wait_idle returns) and
  // must not take its worker down: all sibling tasks run to completion.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter, i] {
      if (i % 8 == 3) throw std::runtime_error("sporadic");
      counter.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 56);  // 64 tasks, 8 throwers
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 16,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 8, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelFor, TransientSerialPath) {
  std::vector<int> order;
  parallel_for(std::size_t{1}, std::size_t{5},
               [&order](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, TransientParallelMatchesSerial) {
  std::vector<std::atomic<std::uint64_t>> out(200);
  parallel_for(std::size_t{8}, out.size(), [&out](std::size_t i) {
    out[i].store(i * i);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].load(), i * i);
  }
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Deterministic per-index work must give identical results at any width.
  auto compute = [](std::size_t threads) {
    std::vector<std::uint64_t> out(64);
    parallel_for(threads, out.size(), [&out](std::size_t i) {
      Rng rng(derive_seed(77, {i}));
      out[i] = rng.next_u64();
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace mtm
