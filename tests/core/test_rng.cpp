#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace mtm {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), ContractError);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform(kBound)];
  // Each bucket expects 10000; allow 5 sigma ≈ 475.
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kSamples / kBound, 500) << "bucket " << v;
  }
}

TEST(Rng, CoinIsFair) {
  Rng rng(13);
  int heads = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.coin()) ++heads;
  }
  EXPECT_NEAR(heads, kSamples / 2, 800);
}

TEST(Rng, BernoulliMatchesP) {
  Rng rng(17);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 30000, 800);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(-0.1), ContractError);
  EXPECT_THROW(rng.bernoulli(1.1), ContractError);
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformInInclusive) {
  Rng rng(29);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(31);
  const auto perm = rng.permutation(100);
  std::set<std::uint32_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 100u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(37);
  std::vector<int> v{1, 2, 2, 3, 5, 8, 13};
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(41);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), ContractError);
}

TEST(DeriveSeed, DistinctIdsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    for (std::uint64_t node = 0; node < 10; ++node) {
      seeds.insert(derive_seed(1234, {trial, node}));
    }
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(5, {1, 2, 3}), derive_seed(5, {1, 2, 3}));
  EXPECT_NE(derive_seed(5, {1, 2, 3}), derive_seed(5, {1, 3, 2}));
  EXPECT_NE(derive_seed(5, {1}), derive_seed(6, {1}));
}

TEST(NodeStreams, IndependentAndDeterministic) {
  auto streams_a = make_node_streams(99, 8);
  auto streams_b = make_node_streams(99, 8);
  ASSERT_EQ(streams_a.size(), 8u);
  for (std::size_t u = 0; u < 8; ++u) {
    EXPECT_EQ(streams_a[u].next_u64(), streams_b[u].next_u64());
  }
  // Different nodes see different streams.
  auto fresh = make_node_streams(99, 2);
  EXPECT_NE(fresh[0].next_u64(), fresh[1].next_u64());
}

TEST(Xoshiro, JumpChangesState) {
  Xoshiro256 gen(5);
  Xoshiro256 jumped(5);
  jumped.jump();
  bool differs = false;
  for (int i = 0; i < 8 && !differs; ++i) {
    differs = gen() != jumped();
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace mtm
