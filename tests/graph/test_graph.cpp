#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/assert.hpp"

namespace mtm {
namespace {

TEST(Graph, TriangleBasics) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, NeighborsSortedAscending) {
  Graph g(5, {{0, 4}, {0, 2}, {0, 1}, {0, 3}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[3], 4u);
}

TEST(Graph, EdgeOrientationNormalized) {
  Graph g(3, {{2, 0}});
  EXPECT_EQ(g.edges().front(), (Edge{0, 2}));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(3, {{1, 1}}), ContractError);
}

TEST(Graph, RejectsDuplicateEdges) {
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), ContractError);
  EXPECT_THROW(Graph(3, {{0, 1}, {0, 1}}), ContractError);
}

TEST(Graph, RejectsOutOfRange) {
  EXPECT_THROW(Graph(3, {{0, 3}}), ContractError);
  EXPECT_THROW(Graph(0, {}), ContractError);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::empty(4);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, IsolatedNodeAllowed) {
  Graph g(4, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Relabel, PreservesStructure) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});  // path 0-1-2-3
  const std::vector<NodeId> perm{3, 2, 1, 0};  // reverse
  const Graph h = relabel(g, perm);
  EXPECT_EQ(h.edge_count(), 3u);
  EXPECT_TRUE(h.has_edge(3, 2));
  EXPECT_TRUE(h.has_edge(2, 1));
  EXPECT_TRUE(h.has_edge(1, 0));
  EXPECT_FALSE(h.has_edge(0, 3));
  EXPECT_EQ(h.max_degree(), g.max_degree());
}

TEST(Relabel, IdentityIsNoop) {
  Graph g(3, {{0, 1}, {1, 2}});
  const std::vector<NodeId> id{0, 1, 2};
  const Graph h = relabel(g, id);
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(Relabel, RejectsNonBijection) {
  Graph g(3, {{0, 1}});
  const std::vector<NodeId> dup{0, 0, 1};
  EXPECT_THROW(relabel(g, dup), ContractError);
  const std::vector<NodeId> short_perm{0, 1};
  EXPECT_THROW(relabel(g, short_perm), ContractError);
}

TEST(Graph, LargeStarDegrees) {
  std::vector<Edge> edges;
  const NodeId n = 1000;
  for (NodeId u = 1; u < n; ++u) edges.push_back({0, u});
  Graph g(n, std::move(edges));
  EXPECT_EQ(g.max_degree(), n - 1);
  EXPECT_EQ(g.degree(0), n - 1);
  EXPECT_EQ(g.degree(500), 1u);
}

}  // namespace
}  // namespace mtm
