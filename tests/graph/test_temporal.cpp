#include "graph/temporal.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/push_pull.hpp"
#include "sim/mobility.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(Temporal, StaticGraphEqualsBfsDepth) {
  StaticGraphProvider topo(make_path(6));
  const auto arrival = foremost_arrival_rounds(topo, {0}, 100);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(arrival[u], static_cast<Round>(u));
  }
  EXPECT_EQ(temporal_spread_lower_bound(topo, {0}, 100), 5u);
}

TEST(Temporal, SourceArrivesAtZero) {
  StaticGraphProvider topo(make_clique(5));
  const auto arrival = foremost_arrival_rounds(topo, {2}, 10);
  EXPECT_EQ(arrival[2], 0u);
  for (NodeId u = 0; u < 5; ++u) {
    if (u != 2) {
      EXPECT_EQ(arrival[u], 1u);
    }
  }
}

TEST(Temporal, MultipleSources) {
  StaticGraphProvider topo(make_path(9));
  EXPECT_EQ(temporal_spread_lower_bound(topo, {0, 8}, 100), 4u);
}

TEST(Temporal, ChangingTopologyCanOnlyHelpOrHurt) {
  // Relabeling every round: foremost arrival under churn is at most the
  // number of rounds needed with fresh random positions — just verify it
  // is well-defined, bounded, and >= 1 for n >= 2.
  RelabelingGraphProvider topo(make_cycle(10), 1, 5);
  const Round bound = temporal_spread_lower_bound(topo, {0}, 1000);
  EXPECT_GE(bound, 1u);
  EXPECT_LE(bound, 9u);  // cannot exceed the static diameter... per-round
                         // relabeling only accelerates reachability here
}

TEST(Temporal, OneHopPerRoundSemantics) {
  // A node reached in round r must not forward in round r: on P3 from one
  // end, node 2 arrives at round 2, not 1.
  StaticGraphProvider topo(make_path(3));
  const auto arrival = foremost_arrival_rounds(topo, {0}, 10);
  EXPECT_EQ(arrival[1], 1u);
  EXPECT_EQ(arrival[2], 2u);
}

TEST(Temporal, LowerBoundsRealProtocols) {
  // PUSH-PULL over a mobility schedule can never beat the foremost
  // arrival bound computed over the SAME schedule (same provider seed).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    MobilityConfig cfg;
    cfg.node_count = 20;
    cfg.radius = 0.25;
    cfg.speed = 0.05;
    cfg.tau = 2;
    cfg.seed = seed;
    Round lower = 0;
    {
      MobilityGraphProvider analysis_topo(cfg);
      lower = temporal_spread_lower_bound(analysis_topo, {0}, 1u << 16);
    }
    MobilityGraphProvider sim_topo(cfg);
    PushPull proto({0});
    EngineConfig ecfg;
    ecfg.seed = seed;
    Engine engine(sim_topo, proto, ecfg);
    const RunResult r = run_until_stabilized(engine, 1u << 22);
    ASSERT_TRUE(r.converged);
    EXPECT_GE(r.rounds, lower) << "seed " << seed;
  }
}

TEST(Temporal, UnreachableWithinCapThrows) {
  StaticGraphProvider topo(make_path(10));
  EXPECT_THROW(temporal_spread_lower_bound(topo, {0}, 3), ContractError);
  const auto arrival = foremost_arrival_rounds(topo, {0}, 3);
  EXPECT_EQ(arrival[9], kUnreachableRound);
}

TEST(Temporal, Validates) {
  StaticGraphProvider topo(make_path(3));
  EXPECT_THROW(foremost_arrival_rounds(topo, {}, 10), ContractError);
  EXPECT_THROW(foremost_arrival_rounds(topo, {5}, 10), ContractError);
  EXPECT_THROW(foremost_arrival_rounds(topo, {0}, 0), ContractError);
}

}  // namespace
}  // namespace mtm
