#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/connectivity.hpp"

namespace mtm {
namespace {

TEST(Generators, Clique) {
  const Graph g = make_clique(6);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(diameter(g), 4u);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_EQ(diameter(g), 3u);
  EXPECT_THROW(make_cycle(2), ContractError);
}

TEST(Generators, Star) {
  const Graph g = make_star(10);
  EXPECT_EQ(g.degree(0), 9u);
  for (NodeId u = 1; u < 10; ++u) EXPECT_EQ(g.degree(u), 1u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Generators, StarLineStructure) {
  // 4 stars of 3 points each: n = 16.
  const Graph g = make_star_line(4, 3);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_TRUE(is_connected(g));
  // Interior centers: 3 leaves + 2 line neighbors = 5; Δ = p + 2.
  EXPECT_EQ(g.max_degree(), 5u);
  const NodeId c0 = star_line_center(0, 3);
  const NodeId c1 = star_line_center(1, 3);
  EXPECT_EQ(c0, 0u);
  EXPECT_EQ(c1, 4u);
  EXPECT_TRUE(g.has_edge(c0, c1));
  EXPECT_EQ(g.degree(c0), 4u);  // end star: 3 leaves + 1 line neighbor
  EXPECT_EQ(g.degree(c1), 5u);  // interior
  // Leaves connect only to their center.
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(c0, 1));
}

TEST(Generators, StarLineSingleStarIsStar) {
  const Graph g = make_star_line(1, 4);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.degree(0), 4u);
}

TEST(Generators, StarLinePaperShape) {
  // The paper's construction: sqrt(n) stars of sqrt(n) points.
  const NodeId s = 8;
  const Graph g = make_star_line(s, s);
  EXPECT_EQ(g.node_count(), s * (s + 1));
  EXPECT_EQ(g.max_degree(), s + 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomRegular) {
  Rng rng(5);
  const Graph g = make_random_regular(20, 4, rng);
  EXPECT_EQ(g.node_count(), 20u);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomRegularOddProductRejected) {
  Rng rng(5);
  EXPECT_THROW(make_random_regular(7, 3, rng), ContractError);
  EXPECT_THROW(make_random_regular(10, 2, rng), ContractError);   // d < 3
  EXPECT_THROW(make_random_regular(4, 4, rng), ContractError);    // d >= n
}

TEST(Generators, RandomRegularDeterministicPerSeed) {
  Rng a(9), b(9);
  const Graph ga = make_random_regular(16, 4, a);
  const Graph gb = make_random_regular(16, 4, b);
  EXPECT_EQ(ga.edges(), gb.edges());
}

TEST(Generators, ErdosRenyiConnected) {
  Rng rng(11);
  const Graph g = make_erdos_renyi_connected(30, 0.2, rng);
  EXPECT_EQ(g.node_count(), 30u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ErdosRenyiStitchesSparse) {
  Rng rng(13);
  // p so small the raw sample is almost surely disconnected: stitching must
  // still deliver a connected graph.
  const Graph g = make_erdos_renyi_connected(40, 0.01, rng, 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3u + 2u * 4u);  // 17
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.degree(0), 2u);  // corner
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GridSingleRowIsPath) {
  const Graph g = make_grid(1, 5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_THROW(make_hypercube(0), ContractError);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 5);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.degree(3), 3u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(3, 4));
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(Generators, BinaryTree) {
  const Graph g = make_binary_tree(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarbellDirect) {
  const Graph g = make_barbell(4);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(3, 4));  // bridge edge
  EXPECT_EQ(g.max_degree(), 4u);  // bridge endpoints have degree k
}

TEST(Generators, RingOfCliques) {
  const Graph g = make_ring_of_cliques(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_TRUE(is_connected(g));
  // Intra: 4 * C(5,2) = 40, portals: 4 -> 44 edges.
  EXPECT_EQ(g.edge_count(), 44u);
  // Portal nodes have degree (clique_size - 1) + 1 = clique_size = 5.
  EXPECT_EQ(g.max_degree(), 5u);
  // Portal edges: clique 0's node 1 to clique 1's node 0 (= node 5).
  EXPECT_TRUE(g.has_edge(1, 5));
  EXPECT_TRUE(g.has_edge(6, 10));
  EXPECT_TRUE(g.has_edge(16, 0));  // wraps around
  EXPECT_THROW(make_ring_of_cliques(2, 4), ContractError);
  EXPECT_THROW(make_ring_of_cliques(3, 1), ContractError);
}

TEST(Generators, RingOfCliquesMinimalSizes) {
  const Graph g = make_ring_of_cliques(3, 2);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SmallWorldLatticeAtBetaZero) {
  Rng rng(1);
  const Graph g = make_small_world(12, 2, 0.0, rng);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 24u);  // n * k_half
  for (NodeId u = 0; u < 12; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 11));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SmallWorldRewiringShrinksDiameter) {
  Rng rng(2);
  const Graph lattice = make_small_world(64, 2, 0.0, rng);
  const Graph rewired = make_small_world(64, 2, 0.3, rng);
  EXPECT_TRUE(is_connected(rewired));
  EXPECT_EQ(rewired.node_count(), 64u);
  // The small-world effect: shortcuts cut the diameter well below the
  // lattice's n/(2k) ≈ 16.
  EXPECT_LT(diameter(rewired), diameter(lattice));
}

TEST(Generators, SmallWorldAlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    EXPECT_TRUE(is_connected(make_small_world(30, 1, 0.8, rng)));
  }
}

TEST(Generators, SmallWorldValidates) {
  Rng rng(3);
  EXPECT_THROW(make_small_world(4, 2, 0.1, rng), ContractError);
  EXPECT_THROW(make_small_world(10, 0, 0.1, rng), ContractError);
  EXPECT_THROW(make_small_world(10, 2, 1.5, rng), ContractError);
}

TEST(Generators, BarbellWithBridgePath) {
  const Graph g = make_barbell(3, 2);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_TRUE(is_connected(g));
  // bridge path: 2 - 6 - 7 - 3
  EXPECT_TRUE(g.has_edge(2, 6));
  EXPECT_TRUE(g.has_edge(6, 7));
  EXPECT_TRUE(g.has_edge(7, 3));
}

}  // namespace
}  // namespace mtm
