#include "graph/conductance.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(Conductance, VolumeAndCutEdges) {
  const Graph g = make_path(4);  // degrees 1,2,2,1
  std::vector<bool> in_s{true, true, false, false};
  EXPECT_EQ(volume(g, in_s), 3u);
  EXPECT_EQ(cut_edge_count(g, in_s), 1u);
  EXPECT_DOUBLE_EQ(conductance_of_set(g, in_s), 1.0 / 3.0);
}

TEST(Conductance, RejectsDegenerateSets) {
  const Graph g = make_path(3);
  std::vector<bool> empty(3, false);
  EXPECT_THROW(conductance_of_set(g, empty), ContractError);
  std::vector<bool> all(3, true);
  EXPECT_THROW(conductance_of_set(g, all), ContractError);
}

TEST(Conductance, ExactOnClique) {
  // K6: best cut |S| = 3: cut edges 9, vol(S) = 15 -> 0.6.
  EXPECT_NEAR(conductance_exact(make_clique(6)), 9.0 / 15.0, 1e-12);
}

TEST(Conductance, ExactOnCycle) {
  // C8: arc of 4: cut 2, vol 8 -> 0.25.
  EXPECT_DOUBLE_EQ(conductance_exact(make_cycle(8)), 0.25);
}

TEST(Conductance, StarHasConstantConductance) {
  // The separation the paper leans on: the star's conductance stays Θ(1)
  // while its vertex expansion collapses as Θ(1/n). Every star cut of
  // volume v has at least ~v/2 cut edges.
  for (NodeId n : {8u, 12u, 16u}) {
    const Graph star = make_star(n);
    const double phi = conductance_exact(star);
    const double alpha = vertex_expansion_exact(star);
    EXPECT_GE(phi, 0.49) << "n = " << n;
    EXPECT_LE(alpha, 2.0 / static_cast<double>(n - 2)) << "n = " << n;
    EXPECT_GT(phi / alpha, static_cast<double>(n) / 8.0) << "n = " << n;
  }
}

TEST(Conductance, StarLineHasLowBoth) {
  // The star-line is slow for BOTH measures (a genuine bottleneck).
  const Graph g = make_star_line(4, 3);  // n = 16
  EXPECT_LT(conductance_exact(g), 0.1);
  EXPECT_LT(vertex_expansion_exact(g), 0.2);
}

TEST(Conductance, UpperBoundNeverBelowExact) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = make_erdos_renyi_connected(12, 0.3, rng);
    Rng sampler(static_cast<std::uint64_t>(trial));
    EXPECT_GE(conductance_upper_bound(g, sampler, 128) + 1e-12,
              conductance_exact(g));
  }
}

TEST(Conductance, UpperBoundTightOnStructured) {
  Rng rng(4);
  EXPECT_DOUBLE_EQ(conductance_upper_bound(make_cycle(16), rng), 0.125);
  // Star: BFS sweep from a leaf finds {leaf} with phi = 1; from center the
  // half-volume guard stops early; random sets find ~0.5 cuts. Exact = 0.5
  // at S = one leaf... vol({leaf}) = 1, cut = 1 -> 1.0; S = half leaves:
  // cut = vol = k -> 1.0; S = {center, leaf}: vol = n, cut = n - 2... the
  // exact optimum for star n=10 is (n-2)/n at S = {center, leaf}? Verify
  // consistency against exact instead of a literal.
  const Graph star = make_star(10);
  EXPECT_NEAR(conductance_upper_bound(star, rng),
              conductance_exact(star), 1e-9);
}

TEST(Conductance, ExactGuards) {
  EXPECT_THROW(conductance_exact(make_clique(21)), ContractError);
  EXPECT_THROW(conductance_exact(Graph::empty(4)), ContractError);
}

}  // namespace
}  // namespace mtm
