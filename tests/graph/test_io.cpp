#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/assert.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(GraphIo, WriteReadRoundTrip) {
  Rng rng(1);
  const Graph g = make_erdos_renyi_connected(20, 0.25, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, CommentsIgnored) {
  std::stringstream in("# a comment\n3 2\n# another\n0 1\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(GraphIo, MalformedInputsThrowParseError) {
  {
    std::stringstream in("");
    EXPECT_THROW(read_edge_list(in), GraphParseError);
  }
  {
    std::stringstream in("3");
    EXPECT_THROW(read_edge_list(in), GraphParseError);
  }
  {
    std::stringstream in("3 2\n0 1\n");  // truncated edge list
    EXPECT_THROW(read_edge_list(in), GraphParseError);
  }
  {
    std::stringstream in("3 1\n0 7\n");  // endpoint out of range
    EXPECT_THROW(read_edge_list(in), GraphParseError);
  }
  {
    std::stringstream in("0 0\n");  // zero nodes
    EXPECT_THROW(read_edge_list(in), GraphParseError);
  }
}

TEST(GraphIo, SemanticErrorsThrowContractError) {
  std::stringstream in("3 2\n0 1\n1 0\n");  // duplicate edge
  EXPECT_THROW(read_edge_list(in), ContractError);
  std::stringstream loops("3 1\n1 1\n");  // self loop
  EXPECT_THROW(read_edge_list(loops), ContractError);
}

TEST(GraphIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mtm_io_test_graph.txt";
  const Graph g = make_star_line(3, 3);
  save_edge_list(path, g);
  const Graph back = load_edge_list(path);
  EXPECT_EQ(back.edges(), g.edges());
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/dir/graph.txt"), GraphParseError);
}

TEST(GraphIo, DotExport) {
  const Graph g = make_path(3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph g {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

TEST(GraphIo, DotHighlight) {
  const Graph g = make_path(3);
  std::vector<bool> mark{false, true, false};
  const std::string dot = to_dot(g, &mark);
  EXPECT_NE(dot.find("1 [style=filled"), std::string::npos);
  EXPECT_EQ(dot.find("0 [style=filled"), std::string::npos);
  std::vector<bool> wrong_size{true};
  EXPECT_THROW(to_dot(g, &wrong_size), ContractError);
}

}  // namespace
}  // namespace mtm
