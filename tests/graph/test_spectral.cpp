#include "graph/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/assert.hpp"
#include "graph/conductance.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(Spectral, CliqueLambda2) {
  // Normalized adjacency of K_n has eigenvalues {1, -1/(n-1)}: lambda2 (by
  // value) is -1/(n-1).
  Rng rng(1);
  const double l2 = lambda2_normalized_adjacency(make_clique(10), rng);
  EXPECT_NEAR(l2, -1.0 / 9.0, 1e-3);
}

TEST(Spectral, CycleLambda2) {
  // C_n: eigenvalues cos(2*pi*k/n); lambda2 = cos(2*pi/n).
  Rng rng(2);
  const NodeId n = 16;
  const double l2 = lambda2_normalized_adjacency(make_cycle(n), rng);
  EXPECT_NEAR(l2, std::cos(2.0 * M_PI / n), 1e-4);
}

TEST(Spectral, CompleteBipartiteLambda2) {
  // K_{a,b} normalized adjacency has eigenvalues {1, 0 (multiple), -1}:
  // lambda2 = 0.
  Rng rng(3);
  const double l2 =
      lambda2_normalized_adjacency(make_complete_bipartite(4, 6), rng);
  EXPECT_NEAR(l2, 0.0, 1e-4);
}

TEST(Spectral, HypercubeLambda2) {
  // Q_d: normalized eigenvalues (d - 2k)/d; lambda2 = (d-2)/d.
  Rng rng(4);
  const int d = 4;
  const double l2 = lambda2_normalized_adjacency(make_hypercube(d), rng);
  EXPECT_NEAR(l2, (d - 2.0) / d, 1e-4);
}

TEST(Spectral, StarLambda2) {
  // Star: normalized adjacency eigenvalues {1, 0 (n-2 times), -1}:
  // lambda2 = 0 — consistent with the star's GREAT conductance. The
  // star's slowness in the MTM is invisible to spectral measures too;
  // only vertex expansion sees it.
  Rng rng(5);
  const double l2 = lambda2_normalized_adjacency(make_star(12), rng);
  EXPECT_NEAR(l2, 0.0, 1e-4);
}

TEST(Spectral, CheegerInequalityHolds) {
  // Phi^2/2 <= 1 - lambda2 <= 2*Phi for every family instance we can
  // evaluate exactly.
  Rng rng(6);
  for (auto&& [g, label] : std::vector<std::pair<Graph, const char*>>{
           {make_clique(12), "clique"},
           {make_cycle(14), "cycle"},
           {make_star(12), "star"},
           {make_grid(3, 4), "grid"},
           {make_star_line(3, 3), "star-line"}}) {
    const double phi = conductance_exact(g);
    Rng local(7);
    const double gap = 1.0 - lambda2_normalized_adjacency(g, local);
    EXPECT_LE(phi * phi / 2.0, gap + 1e-6) << label;
    EXPECT_GE(2.0 * phi, gap - 1e-6) << label;
  }
}

TEST(Spectral, RelaxationTimeOrdersFamilies) {
  // Cycle (slow mixing) has much larger relaxation time than the clique.
  Rng rng(8);
  const double t_clique = relaxation_time(make_clique(16), rng);
  Rng rng2(9);
  const double t_cycle = relaxation_time(make_cycle(16), rng2);
  EXPECT_GT(t_cycle, 4.0 * t_clique);
}

TEST(Spectral, Validates) {
  Rng rng(10);
  EXPECT_THROW(lambda2_normalized_adjacency(Graph::empty(3), rng),
               ContractError);
  Graph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(lambda2_normalized_adjacency(disconnected, rng),
               ContractError);
  EXPECT_THROW(lambda2_normalized_adjacency(make_path(4), rng, 0),
               ContractError);
}

TEST(Spectral, DeterministicPerSeed) {
  Rng a(11), b(11);
  const Graph g = make_grid(4, 4);
  EXPECT_DOUBLE_EQ(lambda2_normalized_adjacency(g, a),
                   lambda2_normalized_adjacency(g, b));
}

}  // namespace
}  // namespace mtm
