#include "graph/exact_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/assert.hpp"
#include "core/stats.hpp"
#include "graph/generators.hpp"
#include "protocols/push_pull.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(ExactChain, DistributionSumsToOne) {
  for (auto&& g : {make_path(4), make_clique(4), make_star(5)}) {
    for (std::uint32_t mask = 1;
         mask < (std::uint32_t{1} << g.node_count()) - 1; ++mask) {
      double total = 0.0;
      for (const auto& [next, p] : push_pull_round_distribution(g, mask)) {
        EXPECT_GE(p, 0.0);
        EXPECT_EQ(next & mask, mask) << "informed set must not shrink";
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-12) << "mask " << mask;
    }
  }
}

TEST(ExactChain, TwoNodePathClosedForm) {
  // P2, node 0 informed. The rumor crosses iff exactly one endpoint sends
  // (the other then receives it / pulls it): probability 1/2 per round.
  // E[T] = 2 exactly.
  const Graph g = make_path(2);
  const auto dist = push_pull_round_distribution(g, 0b01);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist[0].first, 0b01u);
  EXPECT_NEAR(dist[0].second, 0.5, 1e-12);
  EXPECT_EQ(dist[1].first, 0b11u);
  EXPECT_NEAR(dist[1].second, 0.5, 1e-12);
  EXPECT_NEAR(push_pull_expected_rounds(g, 0), 2.0, 1e-12);
}

TEST(ExactChain, TriangleFirstStep) {
  // K3 with node 0 informed: by symmetry P(no progress) can be computed by
  // brute force; sanity-check structural properties instead of a long
  // hand-derivation: progress probability must be strictly between 0 and 1
  // and the expected time must exceed 1 round.
  const Graph g = make_clique(3);
  const auto dist = push_pull_round_distribution(g, 0b001);
  double stay = 0.0;
  for (const auto& [next, p] : dist) {
    if (next == 0b001u) stay = p;
  }
  EXPECT_GT(stay, 0.0);
  EXPECT_LT(stay, 1.0);
  const double expected = push_pull_expected_rounds(g, 0);
  EXPECT_GT(expected, 1.0);
  EXPECT_LT(expected, 20.0);
}

TEST(ExactChain, SymmetryAcrossSources) {
  // On vertex-transitive graphs the expected time is source-independent.
  const Graph cycle = make_cycle(5);
  const double from0 = push_pull_expected_rounds(cycle, 0);
  const double from2 = push_pull_expected_rounds(cycle, 2);
  EXPECT_NEAR(from0, from2, 1e-9);
  const Graph clique = make_clique(5);
  EXPECT_NEAR(push_pull_expected_rounds(clique, 0),
              push_pull_expected_rounds(clique, 3), 1e-9);
}

TEST(ExactChain, StarLeafVsCenter) {
  // Star: starting at a leaf costs strictly more than starting at the
  // center (the leaf first has to reach the center).
  const Graph g = make_star(5);
  EXPECT_GT(push_pull_expected_rounds(g, 1),
            push_pull_expected_rounds(g, 0));
}

// The headline validation: the ENGINE's Monte-Carlo mean must match the
// exact chain expectation within sampling error. This exercises proposal
// resolution, the sender-cannot-receive rule, uniform acceptance, and the
// bidirectional exchange — any systematic deviation in the simulator's
// mechanics shows up here as a biased mean.
class EngineVsExactChain : public ::testing::TestWithParam<int> {};

TEST_P(EngineVsExactChain, MonteCarloMeanMatchesExactExpectation) {
  Graph g = [&]() -> Graph {
    switch (GetParam()) {
      case 0:
        return make_path(4);
      case 1:
        return make_clique(4);
      case 2:
        return make_star(5);
      case 3:
        return make_cycle(5);
      default:
        return make_path(5);
    }
  }();
  const double exact = push_pull_expected_rounds(g, 0);

  constexpr std::size_t kTrials = 4000;
  RunningStats stats;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    StaticGraphProvider topo(g);
    PushPull proto({0});
    EngineConfig cfg;
    cfg.seed = derive_seed(0xe8ac7, {static_cast<std::uint64_t>(GetParam()),
                                     trial});
    Engine engine(topo, proto, cfg);
    const RunResult r = run_until_stabilized(engine, 1u << 20);
    ASSERT_TRUE(r.converged);
    stats.add(static_cast<double>(r.rounds));
  }
  const double sem = stats.stddev() / std::sqrt(static_cast<double>(kTrials));
  EXPECT_NEAR(stats.mean(), exact, 4.5 * sem)
      << "engine mean deviates from the exact chain expectation ("
      << stats.mean() << " vs " << exact << ", sem " << sem << ")";
}

INSTANTIATE_TEST_SUITE_P(Topologies, EngineVsExactChain,
                         ::testing::Range(0, 5));

TEST(ExactChain, Validates) {
  EXPECT_THROW(push_pull_expected_rounds(make_clique(7), 0), ContractError);
  EXPECT_THROW(push_pull_expected_rounds(make_path(4), 4), ContractError);
  EXPECT_THROW(push_pull_round_distribution(make_path(4), 0), ContractError);
  EXPECT_THROW(push_pull_round_distribution(make_path(4), 1u << 4),
               ContractError);
}

}  // namespace
}  // namespace mtm
