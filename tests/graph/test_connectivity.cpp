#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/assert.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(Connectivity, SingleNodeConnected) {
  EXPECT_TRUE(is_connected(Graph::empty(1)));
}

TEST(Connectivity, TwoIsolatedNodesDisconnected) {
  EXPECT_FALSE(is_connected(Graph::empty(2)));
}

TEST(Connectivity, ComponentsLabeling) {
  // Two triangles.
  Graph g(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(Connectivity, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(dist[u], u);
}

TEST(Connectivity, BfsUnreachableMarked) {
  Graph g(3, {{0, 1}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Connectivity, EccentricityAndDiameter) {
  const Graph g = make_path(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
  EXPECT_EQ(diameter(g), 6u);
  EXPECT_EQ(diameter(make_clique(5)), 1u);
  EXPECT_EQ(diameter(make_star(9)), 2u);
}

TEST(Connectivity, EccentricityRequiresConnected) {
  Graph g(3, {{0, 1}});
  EXPECT_THROW(eccentricity(g, 0), ContractError);
}

TEST(Connectivity, StarLineDiameter) {
  // Line of s stars: leaf -> center -> ... -> center -> leaf = s + 1 hops.
  const Graph g = make_star_line(5, 3);
  EXPECT_EQ(diameter(g), 6u);
}

TEST(Connectivity, FilteredComponentsMatchUnfilteredWhenEverythingOk) {
  Graph g(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const auto all_nodes = [](NodeId) { return true; };
  const auto all_edges = [](NodeId, NodeId) { return true; };
  const Components plain = connected_components(g);
  const Components filtered = filtered_components(g, all_nodes, all_edges);
  EXPECT_EQ(filtered.count, plain.count);
  EXPECT_EQ(filtered.label, plain.label);
}

TEST(Connectivity, FilteredComponentsRelabelUnderMidRunEdgeRemoval) {
  // The invariant monitor's exact usage: the Graph object never changes,
  // the edge filter does as partition windows open mid-run. Removing one
  // cycle edge keeps it connected; removing a second splits it in two.
  const Graph g = make_cycle(6);
  const auto alive = [](NodeId) { return true; };
  std::set<std::pair<NodeId, NodeId>> cut;
  const auto edge_ok = [&cut](NodeId u, NodeId v) {
    return cut.count({u, v}) == 0;  // u < v by the filtered_components contract
  };
  EXPECT_EQ(filtered_components(g, alive, edge_ok).count, 1u);
  cut.insert({0, 1});
  EXPECT_EQ(filtered_components(g, alive, edge_ok).count, 1u);  // now a path
  cut.insert({3, 4});
  const Components split = filtered_components(g, alive, edge_ok);
  EXPECT_EQ(split.count, 2u);
  // The cycle 0-1-2-3-4-5-0 minus {0,1} and {3,4}: 1-2-3 versus 4-5-0.
  EXPECT_EQ(split.label[1], split.label[2]);
  EXPECT_EQ(split.label[2], split.label[3]);
  EXPECT_EQ(split.label[4], split.label[5]);
  EXPECT_EQ(split.label[5], split.label[0]);
  EXPECT_NE(split.label[1], split.label[0]);
}

TEST(Connectivity, FilteredComponentsExcludedNodesStayUnlabeled) {
  // A crashed middle node splits the path and keeps the kUnreachable label
  // (it counts toward no component).
  const Graph g = make_path(5);
  const auto edge_ok = [](NodeId, NodeId) { return true; };
  const auto node_ok = [](NodeId u) { return u != 2; };
  const Components c = filtered_components(g, node_ok, edge_ok);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.label[2], kUnreachable);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(Connectivity, BfsSourceValidated) {
  const Graph g = make_path(3);
  EXPECT_THROW(bfs_distances(g, 3), ContractError);
}

}  // namespace
}  // namespace mtm
