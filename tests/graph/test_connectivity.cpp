#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(Connectivity, SingleNodeConnected) {
  EXPECT_TRUE(is_connected(Graph::empty(1)));
}

TEST(Connectivity, TwoIsolatedNodesDisconnected) {
  EXPECT_FALSE(is_connected(Graph::empty(2)));
}

TEST(Connectivity, ComponentsLabeling) {
  // Two triangles.
  Graph g(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(Connectivity, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(dist[u], u);
}

TEST(Connectivity, BfsUnreachableMarked) {
  Graph g(3, {{0, 1}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Connectivity, EccentricityAndDiameter) {
  const Graph g = make_path(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
  EXPECT_EQ(diameter(g), 6u);
  EXPECT_EQ(diameter(make_clique(5)), 1u);
  EXPECT_EQ(diameter(make_star(9)), 2u);
}

TEST(Connectivity, EccentricityRequiresConnected) {
  Graph g(3, {{0, 1}});
  EXPECT_THROW(eccentricity(g, 0), ContractError);
}

TEST(Connectivity, StarLineDiameter) {
  // Line of s stars: leaf -> center -> ... -> center -> leaf = s + 1 hops.
  const Graph g = make_star_line(5, 3);
  EXPECT_EQ(diameter(g), 6u);
}

TEST(Connectivity, BfsSourceValidated) {
  const Graph g = make_path(3);
  EXPECT_THROW(bfs_distances(g, 3), ContractError);
}

}  // namespace
}  // namespace mtm
