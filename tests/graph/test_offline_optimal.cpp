#include "graph/offline_optimal.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/ppush.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(GreedySpread, CliqueDoublesEveryRound) {
  // K_n from one source: the cut always contains a matching saturating the
  // informed side (until half), so the informed set exactly doubles:
  // 1, 2, 4, ..., n  ->  ceil(log2 n) rounds — and this IS the optimum
  // (it meets the doubling lower bound).
  const OfflineSpreadResult r = greedy_matching_spread(make_clique(16), {0});
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_EQ(r.informed_counts,
            (std::vector<std::uint32_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(certified_spread_lower_bound(make_clique(16), {0}), 4u);
}

TEST(GreedySpread, CliqueOddSize) {
  const OfflineSpreadResult r = greedy_matching_spread(make_clique(11), {0});
  // 1 -> 2 -> 4 -> 8 -> 11 (last round matches only the 3 remaining).
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_EQ(r.informed_counts.back(), 11u);
}

TEST(GreedySpread, PathIsLinearAndOptimal) {
  // From one end of P_n the cut matching is always exactly 1, and the
  // distance bound certifies n-1 rounds are necessary: greedy == optimum.
  const OfflineSpreadResult r = greedy_matching_spread(make_path(9), {0});
  EXPECT_EQ(r.rounds, 8u);
  for (std::size_t i = 0; i < r.informed_counts.size(); ++i) {
    EXPECT_EQ(r.informed_counts[i], i + 1);
  }
  EXPECT_EQ(certified_spread_lower_bound(make_path(9), {0}), 8u);
}

TEST(GreedySpread, StarSerializesOnCenter) {
  // Every cut through the star has matching number 1: n-1 rounds from the
  // center — the capacity argument behind the paper's star separation.
  // (The certified lower bound is weaker here — distance 1, doubling
  // log2 n — the capacity argument is exactly what Lemma V.1 adds.)
  EXPECT_EQ(greedy_matching_spread_rounds(make_star(12), {0}), 11u);
  EXPECT_EQ(greedy_matching_spread_rounds(make_star(12), {1}), 11u);
  EXPECT_EQ(certified_spread_lower_bound(make_star(12), {0}), 4u);
}

TEST(GreedySpread, MultipleSources) {
  // Both ends of a path: meet in the middle.
  EXPECT_EQ(greedy_matching_spread_rounds(make_path(9), {0, 8}), 4u);
  EXPECT_EQ(certified_spread_lower_bound(make_path(9), {0, 8}), 4u);
  // All nodes: zero rounds.
  EXPECT_EQ(greedy_matching_spread_rounds(make_path(3), {0, 1, 2}), 0u);
  EXPECT_EQ(certified_spread_lower_bound(make_path(3), {0, 1, 2}), 0u);
}

TEST(GreedySpread, MonotoneCounts) {
  Rng rng(3);
  const Graph g = make_random_regular(24, 4, rng);
  const OfflineSpreadResult r = greedy_matching_spread(g, {0});
  for (std::size_t i = 1; i < r.informed_counts.size(); ++i) {
    EXPECT_GT(r.informed_counts[i], r.informed_counts[i - 1]);
  }
  EXPECT_EQ(r.informed_counts.back(), 24u);
}

TEST(GreedySpread, GreedyIsNotForwardLooking) {
  // The documented caveat, pinned as a test: on the star-line, greedy
  // maximum matchings inform leaves as readily as the next hub, so the
  // greedy schedule EXCEEDS the certified lower bound by a wide margin —
  // and the true optimum lies strictly between.
  const Graph g = make_star_line(3, 4);  // n = 15
  const std::uint32_t greedy = greedy_matching_spread_rounds(g, {0});
  const std::uint32_t lower = certified_spread_lower_bound(g, {0});
  EXPECT_GT(greedy, lower);
  EXPECT_GE(greedy, 10u);  // near-serialized
  EXPECT_LE(lower, 4u);    // distance 4 from center 0 to the far leaves
}

TEST(CertifiedLowerBound, NoOnlineAlgorithmBeatsIt) {
  // Every PPUSH run must take at least the certified bound.
  for (auto&& [g, label] : std::vector<std::pair<Graph, const char*>>{
           {make_clique(16), "clique"},
           {make_star(16), "star"},
           {make_star_line(3, 4), "star-line"},
           {make_cycle(16), "cycle"}}) {
    const std::uint32_t lower = certified_spread_lower_bound(g, {0});
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      StaticGraphProvider topo(g);
      Ppush proto({0});
      EngineConfig cfg;
      cfg.tag_bits = 1;
      cfg.seed = seed;
      Engine engine(topo, proto, cfg);
      const RunResult result = run_until_stabilized(engine, 1u << 22);
      ASSERT_TRUE(result.converged);
      EXPECT_GE(result.rounds, lower) << label << " seed " << seed;
    }
  }
}

TEST(GreedySpread, GrowthMatchesLemmaV1) {
  // Lemma V.1: each greedy round grows the informed set by >= alpha/4·|S|
  // while |S| <= n/2.
  const Graph g = make_star_line(3, 3);  // n = 12, alpha = 1/6 exactly
  const OfflineSpreadResult r = greedy_matching_spread(g, {0});
  const double alpha = 1.0 / 6.0;
  for (std::size_t i = 1; i < r.informed_counts.size(); ++i) {
    const double prev = r.informed_counts[i - 1];
    if (prev <= 6.0) {
      EXPECT_GE(r.informed_counts[i], prev * (1.0 + alpha / 4.0) - 1e-9);
    }
  }
}

TEST(GreedySpread, Validates) {
  EXPECT_THROW(greedy_matching_spread(make_path(3), {}), ContractError);
  EXPECT_THROW(greedy_matching_spread(make_path(3), {5}), ContractError);
  EXPECT_THROW(greedy_matching_spread(Graph::empty(3), {0}), ContractError);
  EXPECT_THROW(certified_spread_lower_bound(make_path(3), {}), ContractError);
}

}  // namespace
}  // namespace mtm
