#include "graph/matching.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(BipartiteMatcher, PerfectMatchingOnIdentity) {
  BipartiteMatcher m(4, 4);
  for (std::uint32_t i = 0; i < 4; ++i) m.add_edge(i, i);
  EXPECT_EQ(m.solve(), 4u);
}

TEST(BipartiteMatcher, AugmentingPathNeeded) {
  // Classic case where greedy can get 1 but optimum is 2:
  // l0 - {r0, r1}, l1 - {r0}.
  BipartiteMatcher m(2, 2);
  m.add_edge(0, 0);
  m.add_edge(0, 1);
  m.add_edge(1, 0);
  EXPECT_EQ(m.solve(), 2u);
}

TEST(BipartiteMatcher, NoEdges) {
  BipartiteMatcher m(3, 3);
  EXPECT_EQ(m.solve(), 0u);
}

TEST(BipartiteMatcher, StarLimitedToOne) {
  BipartiteMatcher m(1, 5);
  for (std::uint32_t r = 0; r < 5; ++r) m.add_edge(0, r);
  EXPECT_EQ(m.solve(), 1u);
}

TEST(BipartiteMatcher, MatchArraysConsistent) {
  BipartiteMatcher m(3, 3);
  m.add_edge(0, 1);
  m.add_edge(1, 0);
  m.add_edge(2, 2);
  EXPECT_EQ(m.solve(), 3u);
  const auto& lm = m.left_match();
  const auto& rm = m.right_match();
  for (std::uint32_t l = 0; l < 3; ++l) {
    ASSERT_NE(lm[l], BipartiteMatcher::kUnmatched);
    EXPECT_EQ(rm[lm[l]], l);
  }
}

TEST(BipartiteMatcher, SolveIdempotent) {
  BipartiteMatcher m(2, 2);
  m.add_edge(0, 0);
  m.add_edge(1, 1);
  EXPECT_EQ(m.solve(), 2u);
  EXPECT_EQ(m.solve(), 2u);
}

TEST(BipartiteMatcher, AddEdgeAfterSolveRejected) {
  BipartiteMatcher m(2, 2);
  m.add_edge(0, 0);
  m.solve();
  EXPECT_THROW(m.add_edge(1, 1), ContractError);
}

TEST(BipartiteMatcher, RejectsOutOfRange) {
  BipartiteMatcher m(2, 2);
  EXPECT_THROW(m.add_edge(2, 0), ContractError);
  EXPECT_THROW(m.add_edge(0, 2), ContractError);
}

TEST(CutGraph, BuildsCrossEdgesOnly) {
  // Path 0-1-2-3, S = {0, 1}: cut edge is only {1, 2}.
  const Graph g = make_path(4);
  std::vector<bool> in_s{true, true, false, false};
  const CutGraph cut = build_cut_graph(g, in_s);
  EXPECT_EQ(cut.left_nodes, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(cut.right_nodes, (std::vector<NodeId>{2, 3}));
  ASSERT_EQ(cut.edges.size(), 1u);
  EXPECT_EQ(cut.left_nodes[cut.edges[0].first], 1u);
  EXPECT_EQ(cut.right_nodes[cut.edges[0].second], 2u);
}

TEST(CutGraph, RejectsTrivialCuts) {
  const Graph g = make_path(3);
  std::vector<bool> all_true{true, true, true};
  EXPECT_THROW(build_cut_graph(g, all_true), ContractError);
  std::vector<bool> all_false{false, false, false};
  EXPECT_THROW(build_cut_graph(g, all_false), ContractError);
}

TEST(CutMatching, CliqueHalfCut) {
  const Graph g = make_clique(8);
  std::vector<bool> in_s(8, false);
  for (NodeId u = 0; u < 4; ++u) in_s[u] = true;
  // K8 across a 4/4 cut contains a perfect matching of size 4.
  EXPECT_EQ(cut_matching_size(g, in_s), 4u);
}

TEST(CutMatching, StarCenterCut) {
  const Graph g = make_star(6);
  std::vector<bool> in_s(6, false);
  in_s[0] = true;  // center only
  EXPECT_EQ(cut_matching_size(g, in_s), 1u);
  // Leaves-only S: every cut edge goes to the center -> matching 1.
  std::vector<bool> leaves(6, true);
  leaves[0] = false;
  EXPECT_EQ(cut_matching_size(g, leaves), 1u);
}

TEST(CutMatching, GreedyNeverExceedsOptimal) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = make_erdos_renyi_connected(12, 0.3, rng);
    std::vector<bool> in_s(12, false);
    for (NodeId u = 0; u < 12; ++u) in_s[u] = rng.coin();
    // Ensure non-trivial cut.
    in_s[0] = true;
    in_s[11] = false;
    EXPECT_LE(cut_greedy_matching_size(g, in_s), cut_matching_size(g, in_s));
    // Greedy maximal matching is a 2-approximation.
    EXPECT_GE(2 * cut_greedy_matching_size(g, in_s),
              cut_matching_size(g, in_s));
  }
}

TEST(GammaExact, CliqueIsOne) {
  // For K_n and any |S| <= n/2 there is a perfect matching on S across the
  // cut, so gamma = 1.
  EXPECT_DOUBLE_EQ(gamma_exact(make_clique(6)), 1.0);
}

TEST(GammaExact, StarIsSmall) {
  // S = floor(n/2) leaves matches only via the center: gamma = 1/|S|.
  const Graph g = make_star(9);
  EXPECT_DOUBLE_EQ(gamma_exact(g), 1.0 / 4.0);
}

TEST(GammaExact, RejectsLargeN) {
  EXPECT_THROW(gamma_exact(make_clique(21)), ContractError);
}

}  // namespace
}  // namespace mtm
