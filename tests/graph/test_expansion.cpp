#include "graph/expansion.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(Expansion, BoundarySizeOnPath) {
  const Graph g = make_path(5);
  std::vector<bool> in_s{true, true, false, false, false};
  EXPECT_EQ(boundary_size(g, in_s), 1u);  // node 2 borders S
  std::vector<bool> middle{false, false, true, false, false};
  EXPECT_EQ(boundary_size(g, middle), 2u);  // nodes 1 and 3
}

TEST(Expansion, AlphaOfSet) {
  const Graph g = make_clique(4);
  std::vector<bool> in_s{true, true, false, false};
  EXPECT_DOUBLE_EQ(alpha_of_set(g, in_s), 1.0);  // 2 outside both border S
}

TEST(Expansion, ExactCliqueEven) {
  // K6: min over |S| <= 3 of (6-|S|)/|S| = 1 at |S| = 3.
  EXPECT_DOUBLE_EQ(vertex_expansion_exact(make_clique(6)), 1.0);
}

TEST(Expansion, ExactCliqueOdd) {
  // K7: |S| = 3 gives 4/3.
  EXPECT_NEAR(vertex_expansion_exact(make_clique(7)), 4.0 / 3.0, 1e-12);
}

TEST(Expansion, ExactPath) {
  // P8: end segment of 4 has boundary 1 -> alpha = 1/4.
  EXPECT_DOUBLE_EQ(vertex_expansion_exact(make_path(8)), 0.25);
}

TEST(Expansion, ExactCycle) {
  // C8: arc of 4 has boundary 2 -> alpha = 1/2.
  EXPECT_DOUBLE_EQ(vertex_expansion_exact(make_cycle(8)), 0.5);
}

TEST(Expansion, ExactStar) {
  // S10 (center + 9 leaves): 5 leaves have boundary {center} -> 1/5.
  EXPECT_DOUBLE_EQ(vertex_expansion_exact(make_star(10)), 0.2);
}

TEST(Expansion, ExactStarLine) {
  // 3 stars of 3 points: n = 12, half = 6 = one star + 2 extra... the best
  // cut grabs whole stars; exact value must match the closed form within
  // the family_alpha contract for even splits.
  const Graph g = make_star_line(4, 2);  // n = 12, star size 3
  const double exact = vertex_expansion_exact(g);
  EXPECT_DOUBLE_EQ(exact, family_alpha(GraphFamily::kStarLine, 12, 2));
  EXPECT_DOUBLE_EQ(exact, 1.0 / 6.0);
}

TEST(Expansion, ExactStarLineNonDivisibleHalf) {
  // (3 stars of 3 points): n = 12, star size 4 does NOT divide half = 6.
  // The optimal cut takes star 0 plus two leaves of star 1 (a DISCONNECTED
  // set!) with boundary {center 1}: alpha = 1/6 exactly — the closed form
  // must match.
  const Graph g = make_star_line(3, 3);
  EXPECT_DOUBLE_EQ(vertex_expansion_exact(g), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kStarLine, 12, 3), 1.0 / 6.0);
}

TEST(Expansion, ExactMatchesUpperBoundOnSmallGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_erdos_renyi_connected(10, 0.35, rng);
    const double exact = vertex_expansion_exact(g);
    Rng sampler(trial);
    const double upper = vertex_expansion_upper_bound(g, sampler, 128);
    EXPECT_GE(upper + 1e-12, exact);
  }
}

TEST(Expansion, UpperBoundTightOnStructuredFamilies) {
  Rng rng(9);
  // The BFS-sweep candidates find the optimal cut on these families.
  EXPECT_DOUBLE_EQ(vertex_expansion_upper_bound(make_path(16), rng), 0.125);
  EXPECT_DOUBLE_EQ(vertex_expansion_upper_bound(make_cycle(16), rng), 0.25);
  EXPECT_DOUBLE_EQ(vertex_expansion_upper_bound(make_star_line(4, 3), rng),
                   family_alpha(GraphFamily::kStarLine, 16, 3));
}

TEST(Expansion, ExactRejectsLargeN) {
  EXPECT_THROW(vertex_expansion_exact(make_clique(21)), ContractError);
}

TEST(FamilyAlpha, ClosedForms) {
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kClique, 6), 1.0);
  EXPECT_NEAR(family_alpha(GraphFamily::kClique, 7), 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kPath, 8), 0.25);
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kCycle, 8), 0.5);
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kStar, 10), 0.2);
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kBinaryTree, 8), 0.25);
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kBarbell, 10, 5), 0.2);
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kRandomRegular, 100, 4), 0.5);
  EXPECT_GT(family_alpha(GraphFamily::kHypercube, 16, 4), 0.0);
}

TEST(FamilyAlpha, ExactAgreementOnSmallInstances) {
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kClique, 8),
                   vertex_expansion_exact(make_clique(8)));
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kPath, 10),
                   vertex_expansion_exact(make_path(10)));
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kCycle, 10),
                   vertex_expansion_exact(make_cycle(10)));
  EXPECT_DOUBLE_EQ(family_alpha(GraphFamily::kStar, 12),
                   vertex_expansion_exact(make_star(12)));
}

TEST(FamilyAlpha, StarLineNeedsShape) {
  EXPECT_THROW(family_alpha(GraphFamily::kStarLine, 16, 0), ContractError);
}

TEST(FamilyAlpha, Names) {
  EXPECT_STREQ(family_name(GraphFamily::kClique), "clique");
  EXPECT_STREQ(family_name(GraphFamily::kStarLine), "star-line");
  EXPECT_STREQ(family_name(GraphFamily::kRandomRegular), "random-regular");
}

TEST(Expansion, AlphaAtMostOneForConnectedBalancedFamilies) {
  // The paper notes alpha <= 1 always... more precisely alpha(S) can exceed
  // 1 for some S but the min over |S| <= n/2 never exceeds (n - n/2)/(n/2).
  Rng rng(21);
  for (NodeId n : {8u, 12u, 16u}) {
    const Graph g = make_erdos_renyi_connected(n, 0.4, rng);
    EXPECT_LE(vertex_expansion_exact(g), 2.0);
  }
}

}  // namespace
}  // namespace mtm
