// Parallel differential parity: the sharded engine vs the ReferenceEngine.
//
// The engine's intra-round sharding (EngineConfig::intra_round_threads)
// promises results bit-identical to the sequential execution at every
// thread count, because per-node RNG streams ARE the shard streams and
// everything order-sensitive runs in the sequential cross-shard reduction.
// This suite drives the sharded engine in lockstep against the
// ReferenceEngine oracle across thread counts x protocols x fault
// dimensions and asserts byte-identical telemetry after every round.
//
// run_differential's RecordingProtocol is deliberately order-sensitive
// (it records the exact callback sequence) and therefore keeps
// parallel_phases_safe() = false; wrapping would silently force the
// sequential path. The lockstep here compares the order-free observables
// instead — the full telemetry counter set and the external protocol
// state hash — which is exactly what "byte-identical telemetry" pins.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "protocols/bit_convergence.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/classical.hpp"
#include "protocols/stable_leader.hpp"
#include "sim/dynamic_graph.hpp"
#include "sim/engine.hpp"
#include "testing/differential.hpp"
#include "testing/reference_engine.hpp"

namespace mtm::testing {
namespace {

constexpr NodeId kNodes = 48;
constexpr Round kRounds = 64;

struct ParityCase {
  std::string name;
  std::function<std::unique_ptr<Protocol>()> make_protocol;
  EngineConfig config;  // intra_round_threads is overridden per run
};

Graph shared_topology() {
  Rng rng(0x70b0);
  return make_random_regular(kNodes, 6, rng);
}

// The fault dimensions layered over every protocol. Each returns a config
// with protocol-independent knobs only.
std::vector<std::pair<std::string, EngineConfig>> fault_dimensions() {
  std::vector<std::pair<std::string, EngineConfig>> dims;

  EngineConfig none;
  dims.emplace_back("plain", none);

  EngineConfig churn;
  churn.faults.crash_prob = 0.02;
  churn.faults.recovery_prob = 0.25;
  churn.faults.seed = 0xfa17;
  dims.emplace_back("churn", churn);

  EngineConfig partition;
  partition.faults.partition.mode = PartitionMode::kFlapping;
  partition.faults.partition.parts = 2;
  partition.faults.partition.start = 5;
  partition.faults.partition.duration = 6;
  partition.faults.seed = 0xfa18;
  dims.emplace_back("partition", partition);

  EngineConfig sink;  // every fault dimension at once, plus flaky links
  sink.connection_failure_prob = 0.1;
  sink.faults.crash_prob = 0.01;
  sink.faults.recovery_prob = 0.3;
  sink.faults.burst.good_to_bad = 0.05;
  sink.faults.burst.bad_to_good = 0.5;
  sink.faults.burst.loss_good = 0.05;
  sink.faults.edge_degradation = 0.2;
  sink.faults.partition.mode = PartitionMode::kPeriodic;
  sink.faults.partition.parts = 3;
  sink.faults.partition.start = 3;
  sink.faults.partition.duration = 4;
  sink.faults.partition.period = 12;
  sink.faults.seed = 0xfa19;
  dims.emplace_back("churn+links+partition", sink);

  return dims;
}

std::vector<ParityCase> parity_cases() {
  std::vector<ParityCase> cases;
  for (const auto& [dim_name, dim_config] : fault_dimensions()) {
    {
      ParityCase c;
      c.name = "classical-gossip/" + dim_name;
      c.make_protocol = [] {
        return std::make_unique<ClassicalGossip>(
            BlindGossip::shuffled_uids(kNodes, 0xc1a5));
      };
      c.config = dim_config;
      c.config.classical_mode = true;
      c.config.seed = 0x9a11;
      cases.push_back(std::move(c));
    }
    {
      ParityCase c;
      c.name = "stable-leader/" + dim_name;
      c.make_protocol = [] {
        return std::make_unique<StableLeader>(
            BlindGossip::shuffled_uids(kNodes, 0x57ab), /*epoch_timeout=*/16);
      };
      c.config = dim_config;
      c.config.tag_bits = 1;
      c.config.seed = 0x9a12;
      cases.push_back(std::move(c));
    }
    {
      ParityCase c;
      c.name = "bit-convergence/" + dim_name;
      c.make_protocol = [] {
        BitConvergenceConfig bc;
        bc.network_size_bound = 64;
        bc.max_degree_bound = 6;
        return std::make_unique<BitConvergence>(
            BlindGossip::shuffled_uids(kNodes, 0xb17c), bc);
      };
      c.config = dim_config;
      c.config.tag_bits = 1;
      c.config.seed = 0x9a13;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

// Steps both executions in lockstep and asserts every telemetry counter
// and the protocol state hash match after every round.
void expect_lockstep_parity(const ParityCase& parity_case,
                            std::size_t threads, const Graph& topology) {
  auto ref_protocol = parity_case.make_protocol();
  auto opt_protocol = parity_case.make_protocol();
  StaticGraphProvider ref_topology(topology);
  StaticGraphProvider opt_topology(topology);

  EngineConfig opt_config = parity_case.config;
  opt_config.intra_round_threads = threads;
  ReferenceEngine reference(ref_topology, *ref_protocol, parity_case.config);
  Engine engine(opt_topology, *opt_protocol, opt_config);
  if (threads > 1) {
    // All three protocols opt into parallel phases; if sharding silently
    // fell back to sequential this suite would prove nothing.
    ASSERT_EQ(engine.shard_count(), threads) << parity_case.name;
  }

  for (Round r = 1; r <= kRounds; ++r) {
    reference.step();
    engine.step();
    const Telemetry& want = reference.telemetry();
    const Telemetry& got = engine.telemetry();
    const std::string where =
        parity_case.name + " threads=" + std::to_string(threads) +
        " round=" + std::to_string(r);
    ASSERT_EQ(got.proposals(), want.proposals()) << where;
    ASSERT_EQ(got.connections(), want.connections()) << where;
    ASSERT_EQ(got.failed_connections(), want.failed_connections()) << where;
    ASSERT_EQ(got.fault_dropped(), want.fault_dropped()) << where;
    ASSERT_EQ(got.crashes(), want.crashes()) << where;
    ASSERT_EQ(got.recoveries(), want.recoveries()) << where;
    ASSERT_EQ(got.wasted_rounds(), want.wasted_rounds()) << where;
    ASSERT_EQ(got.payload_uids(), want.payload_uids()) << where;
    ASSERT_EQ(protocol_state_hash(*opt_protocol, kNodes),
              protocol_state_hash(*ref_protocol, kNodes))
        << where;
  }
}

TEST(ParallelDifferential, ShardedEngineMatchesReferenceAcrossThreadCounts) {
  const Graph topology = shared_topology();
  for (const ParityCase& parity_case : parity_cases()) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      expect_lockstep_parity(parity_case, threads, topology);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(ParallelDifferential, AutoThreadCountIsStillBitIdentical) {
  // intra_round_threads = 0 picks one shard per hardware thread — whatever
  // that is on the host, results must not move.
  const Graph topology = shared_topology();
  ParityCase parity_case = parity_cases().front();
  expect_lockstep_parity(parity_case, 0, topology);
}

TEST(ParallelDifferential, OrderSensitiveDecoratorForcesSequentialFallback) {
  // RecordingProtocol does not declare parallel_phases_safe, so a sharding
  // request must silently degrade to the sequential path (shard_count 1) —
  // the recorded event stream stays canonical.
  BlindGossip inner(BlindGossip::shuffled_uids(kNodes, 0xdead));
  RecordingProtocol recorder(inner);
  StaticGraphProvider topology(shared_topology());
  EngineConfig config;
  config.intra_round_threads = 8;
  Engine engine(topology, recorder, config);
  EXPECT_EQ(engine.shard_count(), 1u);
  engine.run_rounds(4);
  EXPECT_FALSE(recorder.events().empty());
}

TEST(ParallelDifferential, ExistingLockstepHarnessStillDetectsMutations) {
  // The event-stream harness (sequential engine vs mutated reference) must
  // keep its teeth after the hot-path refactor: a reference seeded with
  // kDropOneConnectionBound has to diverge.
  Scenario scenario;
  scenario.description = "mutation-teeth";
  scenario.make_protocol = [] {
    return std::make_unique<BlindGossip>(
        BlindGossip::shuffled_uids(kNodes, 0x7ee7));
  };
  scenario.make_topology = [] {
    return std::make_unique<StaticGraphProvider>(shared_topology());
  };
  scenario.rounds = 32;
  DifferentialOptions options;
  options.mutation = ReferenceMutation::kDropOneConnectionBound;
  EXPECT_TRUE(run_differential(scenario, options).has_value());
}

}  // namespace
}  // namespace mtm::testing
