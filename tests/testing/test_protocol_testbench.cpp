#include "testing/protocol_testbench.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/bit_convergence.hpp"
#include "protocols/ppush.hpp"
#include "protocols/push_pull.hpp"

namespace mtm {
namespace {

using testing::ProtocolFactory;
using testing::ProviderFactory;
using testing::TestbenchOptions;
using testing::format_failures;
using testing::run_protocol_battery;

ProviderFactory clique_topology(NodeId n) {
  return [n](std::uint64_t) {
    return std::make_unique<StaticGraphProvider>(make_clique(n));
  };
}

TEST(ProtocolTestbench, BlindGossipPasses) {
  ProtocolFactory factory = [](std::uint64_t seed) {
    return std::make_unique<BlindGossip>(BlindGossip::shuffled_uids(12, seed));
  };
  const auto failures =
      run_protocol_battery(factory, clique_topology(12), TestbenchOptions{});
  EXPECT_TRUE(failures.empty()) << format_failures(failures);
}

TEST(ProtocolTestbench, BitConvergencePasses) {
  ProtocolFactory factory = [](std::uint64_t seed) {
    BitConvergenceConfig cfg;
    cfg.network_size_bound = 12;
    cfg.max_degree_bound = 11;
    return std::make_unique<BitConvergence>(
        BlindGossip::shuffled_uids(12, seed), cfg);
  };
  TestbenchOptions options;
  options.tag_bits = 1;
  const auto failures =
      run_protocol_battery(factory, clique_topology(12), options);
  EXPECT_TRUE(failures.empty()) << format_failures(failures);
}

TEST(ProtocolTestbench, PpushPasses) {
  ProtocolFactory factory = [](std::uint64_t) {
    return std::make_unique<Ppush>(std::vector<NodeId>{0});
  };
  TestbenchOptions options;
  options.tag_bits = 1;
  const auto failures =
      run_protocol_battery(factory, clique_topology(16), options);
  EXPECT_TRUE(failures.empty()) << format_failures(failures);
}

/// A deliberately broken protocol: reports stabilized() based on round
/// parity after convergence — the stability check must flag it.
class FlappingProtocol : public Protocol {
 public:
  std::string name() const override { return "flapping"; }
  void init(NodeId n, std::span<Rng>) override { node_count_ = n; }
  Tag advertise(NodeId, Round, Rng&) override { return 0; }
  Decision decide(NodeId, Round, std::span<const NeighborInfo> view,
                  Rng& rng) override {
    if (view.empty() || !rng.coin()) return Decision::receive();
    return Decision::send(view[rng.uniform(view.size())].id);
  }
  Payload make_payload(NodeId, NodeId, Round) override { return {}; }
  void receive_payload(NodeId, NodeId, const Payload&, Round) override {}
  void finish_round(NodeId, Round local_round) override {
    last_round_ = std::max(last_round_, local_round);
  }
  bool stabilized() const override {
    // Flaps with round parity once past a warm-up — non-monotone by design.
    return last_round_ > 20 && last_round_ % 2 == 0;
  }

 private:
  NodeId node_count_ = 0;
  Round last_round_ = 0;
};

TEST(ProtocolTestbench, FlagsNonMonotoneStabilization) {
  ProtocolFactory factory = [](std::uint64_t) {
    return std::make_unique<FlappingProtocol>();
  };
  const auto failures =
      run_protocol_battery(factory, clique_topology(8), TestbenchOptions{});
  bool flagged_stability = false;
  for (const auto& f : failures) {
    flagged_stability |= f.check == "stability";
  }
  EXPECT_TRUE(flagged_stability) << format_failures(failures);
}

/// A protocol with hidden global state: ignores the provided Rngs and uses
/// a process-global counter — the determinism check must flag it.
class GlobalStateProtocol : public Protocol {
 public:
  std::string name() const override { return "global-state"; }
  void init(NodeId n, std::span<Rng>) override {
    node_count_ = n;
    informed_.assign(n, false);
    informed_[0] = true;
    count_ = 1;
  }
  Tag advertise(NodeId, Round, Rng&) override { return 0; }
  Decision decide(NodeId u, Round, std::span<const NeighborInfo> view,
                  Rng&) override {
    if (view.empty()) return Decision::receive();
    // Process-global pseudo-randomness: differs across replays.
    global_counter_ = global_counter_ * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((global_counter_ >> 62) == 0) return Decision::receive();
    return Decision::send(
        view[static_cast<std::size_t>(global_counter_ % view.size())].id);
  }
  Payload make_payload(NodeId u, NodeId, Round) override {
    Payload p;
    if (informed_[u]) {
      p.push_uid(1);
    }
    return p;
  }
  void receive_payload(NodeId u, NodeId, const Payload& p, Round) override {
    if (p.uid_count() > 0 && !informed_[u]) {
      informed_[u] = true;
      ++count_;
    }
  }
  bool stabilized() const override { return count_ == node_count_; }

 private:
  static std::uint64_t global_counter_;
  NodeId node_count_ = 0;
  std::vector<bool> informed_;
  NodeId count_ = 0;
};

std::uint64_t GlobalStateProtocol::global_counter_ = 12345;

TEST(ProtocolTestbench, FlagsHiddenGlobalState) {
  ProtocolFactory factory = [](std::uint64_t) {
    return std::make_unique<GlobalStateProtocol>();
  };
  const auto failures =
      run_protocol_battery(factory, clique_topology(10), TestbenchOptions{});
  bool flagged = false;
  for (const auto& f : failures) {
    flagged |= f.check == "determinism";
  }
  EXPECT_TRUE(flagged) << format_failures(failures);
}

TEST(ProtocolTestbench, FormatFailuresEmpty) {
  EXPECT_EQ(format_failures({}), "");
  EXPECT_NE(format_failures({{"x", "y"}}).find("[x] y"), std::string::npos);
}

}  // namespace
}  // namespace mtm
