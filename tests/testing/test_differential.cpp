// Differential correctness harness: Engine vs ReferenceEngine in lockstep.
//
// The key properties pinned here:
//   * over a broad fuzzed span of model configurations (classical mode,
//     async activation, every acceptance policy, τ ∈ {static, 1, 2, log Δ},
//     failure injection, nine topology families) the optimized engine and
//     the transparent reference implementation are observably identical,
//     round by round — events, telemetry, and protocol state;
//   * the harness has teeth: every intentionally-seeded reference mutation
//     (dropping the one-connection bound, deterministic acceptance,
//     skipping the payload snapshot) is detected;
//   * wrapping a protocol in the RecordingProtocol decorator does not
//     change an execution.
#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/pairwise_averaging.hpp"
#include "sim/runner.hpp"
#include "testing/fuzz.hpp"

namespace mtm::testing {
namespace {

Scenario star_blind_gossip_scenario(NodeId n, Round rounds,
                                    std::uint64_t seed) {
  FuzzCase fuzz_case;
  fuzz_case.protocol = FuzzProtocol::kBlindGossip;
  fuzz_case.generator = "star";
  fuzz_case.n = n;
  fuzz_case.seed = seed;
  fuzz_case.rounds = rounds;
  return make_scenario(fuzz_case);
}

TEST(Differential, LockstepFuzzSpansModelDimensionsWithZeroDivergence) {
  // The acceptance gate for every later refactor: >= 200 fuzzed
  // configurations, zero divergences, every model dimension exercised.
  constexpr std::size_t kCases = 240;
  std::size_t classical = 0, async = 0, failures_injected = 0;
  std::map<AcceptancePolicy, std::size_t> policies;
  std::map<std::string, std::size_t> generators;
  std::size_t tau_static = 0, tau_one = 0, tau_two = 0, tau_log = 0;

  for (std::size_t i = 0; i < kCases; ++i) {
    Rng rng(derive_seed(0xd1ff, {i}));
    const FuzzCase fuzz_case = random_fuzz_case(rng);
    classical += fuzz_case.protocol == FuzzProtocol::kClassicalGossip;
    async += fuzz_case.async_activation;
    failures_injected += fuzz_case.failure_prob > 0.0;
    ++policies[fuzz_case.acceptance];
    ++generators[fuzz_case.generator];
    tau_static += fuzz_case.tau == 0;
    tau_one += fuzz_case.tau == 1;
    tau_two += fuzz_case.tau == 2;
    tau_log += fuzz_case.tau > 2;

    const auto divergence = run_differential(make_scenario(fuzz_case));
    EXPECT_FALSE(divergence.has_value())
        << to_string(fuzz_case) << "\n  " << to_string(*divergence);
  }

  // Span assertions: the sample must actually cover each dimension.
  EXPECT_GT(classical, 0u);
  EXPECT_GT(async, 0u);
  EXPECT_GT(failures_injected, 0u);
  EXPECT_EQ(policies.size(), 3u);
  EXPECT_GT(tau_static, 0u);
  EXPECT_GT(tau_one, 0u);
  EXPECT_GT(tau_two, 0u);
  EXPECT_GT(tau_log, 0u);
  EXPECT_GE(generators.size(), 7u);
}

TEST(Differential, RunFuzzEntryPointIsClean) {
  FuzzOptions options;
  options.cases = 40;
  options.seed = 0xabc1;
  std::size_t seen = 0;
  options.on_case = [&seen](std::size_t, const FuzzCase&) { ++seen; };
  EXPECT_TRUE(run_fuzz(options).empty());
  EXPECT_EQ(seen, 40u);
}

TEST(Differential, ResultIsDeterministic) {
  const Scenario scenario = star_blind_gossip_scenario(8, 24, 17);
  EXPECT_FALSE(run_differential(scenario).has_value());
  EXPECT_FALSE(run_differential(scenario).has_value());
}

class MutationDetection
    : public ::testing::TestWithParam<ReferenceMutation> {};

TEST_P(MutationDetection, SeededEngineMutationIsCaught) {
  // A star forces multi-proposal inboxes at the center, so every mutation
  // of the resolution/exchange semantics becomes observable quickly.
  DifferentialOptions options;
  options.mutation = GetParam();
  const auto divergence =
      run_differential(star_blind_gossip_scenario(6, 32, 3), options);
  ASSERT_TRUE(divergence.has_value())
      << "mutation " << to_string(GetParam()) << " was not detected";
  EXPECT_GE(divergence->round, 1u);
  EXPECT_FALSE(divergence->field.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, MutationDetection,
    ::testing::Values(ReferenceMutation::kDropOneConnectionBound,
                      ReferenceMutation::kAcceptFirstProposal,
                      ReferenceMutation::kSkipPayloadSnapshot),
    [](const ::testing::TestParamInfo<ReferenceMutation>& param) {
      std::string name = to_string(param.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Differential, PayloadSnapshotMutationNeedsStateDependentPayloads) {
  // Control for the kSkipPayloadSnapshot mutant: same scenario without the
  // mutation is clean, proving the detection above is the mutant's doing.
  EXPECT_FALSE(
      run_differential(star_blind_gossip_scenario(6, 32, 3)).has_value());
}

class FailureInjectionParity
    : public ::testing::TestWithParam<AcceptancePolicy> {};

TEST_P(FailureInjectionParity, EveryAcceptancePolicyMatchesUnderDrops) {
  // connection_failure_prob parity: the engines must agree on which
  // established connections the i.i.d. injector kills under every
  // acceptance policy (the drop draw rides on the acceptor's stream, so a
  // policy change reshuffles the whole schedule).
  FuzzCase fuzz_case;
  fuzz_case.protocol = FuzzProtocol::kBlindGossip;
  fuzz_case.generator = "star-line";
  fuzz_case.n = 12;
  fuzz_case.seed = 47;
  fuzz_case.acceptance = GetParam();
  fuzz_case.failure_prob = 0.3;
  fuzz_case.rounds = 48;
  const auto divergence = run_differential(make_scenario(fuzz_case));
  EXPECT_FALSE(divergence.has_value())
      << to_string(fuzz_case) << "\n  " << to_string(*divergence);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FailureInjectionParity,
    ::testing::Values(AcceptancePolicy::kUniformRandom,
                      AcceptancePolicy::kSmallestId,
                      AcceptancePolicy::kLargestId),
    [](const ::testing::TestParamInfo<AcceptancePolicy>& param) {
      switch (param.param) {
        case AcceptancePolicy::kUniformRandom:
          return "uniform";
        case AcceptancePolicy::kSmallestId:
          return "smallest_id";
        case AcceptancePolicy::kLargestId:
          return "largest_id";
      }
      return "unknown";
    });

TEST(FailureInjectionParity, ClassicalModeMatchesUnderDrops) {
  // Classical mode takes the unbounded-accepts branch in both engines; the
  // failure draw ordering there is a separate code path worth pinning.
  FuzzCase fuzz_case;
  fuzz_case.protocol = FuzzProtocol::kClassicalGossip;
  fuzz_case.generator = "star-line";
  fuzz_case.n = 12;
  fuzz_case.seed = 48;
  fuzz_case.failure_prob = 0.3;
  fuzz_case.rounds = 48;
  const auto divergence = run_differential(make_scenario(fuzz_case));
  EXPECT_FALSE(divergence.has_value())
      << to_string(fuzz_case) << "\n  " << to_string(*divergence);
}

TEST(DifferentialFaults, FaultPlansProduceZeroDivergence) {
  // Explicit fault-dimension scenarios (beyond the random sweep): churn,
  // burst loss, degradation, and each oracle, alone and combined, on both
  // the mobile and classical paths.
  struct Dimension {
    const char* label;
    std::function<void(FuzzCase&)> apply;
  };
  const std::vector<Dimension> dimensions = {
      {"churn",
       [](FuzzCase& c) {
         c.crash_prob = 0.1;
         c.recovery_prob = 0.5;
       }},
      {"burst-mild", [](FuzzCase& c) { c.burst = 1; }},
      {"burst-harsh", [](FuzzCase& c) { c.burst = 2; }},
      {"degradation", [](FuzzCase& c) { c.edge_degradation = 0.5; }},
      {"oracle-random",
       [](FuzzCase& c) {
         c.targeting = CrashTargeting::kRandomAlive;
         c.target_every = 6;
       }},
      {"oracle-min-holder",
       [](FuzzCase& c) {
         c.targeting = CrashTargeting::kMinUidHolder;
         c.target_every = 6;
       }},
      {"oracle-leader",
       [](FuzzCase& c) {
         c.targeting = CrashTargeting::kLeaderNode;
         c.target_every = 6;
         c.recovery_prob = 0.3;
       }},
      {"everything",
       [](FuzzCase& c) {
         c.crash_prob = 0.05;
         c.recovery_prob = 0.5;
         c.burst = 2;
         c.edge_degradation = 0.25;
         c.targeting = CrashTargeting::kRandomAlive;
         c.target_every = 8;
       }},
  };
  for (const auto protocol :
       {FuzzProtocol::kBlindGossip, FuzzProtocol::kStableLeader,
        FuzzProtocol::kClassicalGossip}) {
    for (const Dimension& dim : dimensions) {
      FuzzCase fuzz_case;
      fuzz_case.protocol = protocol;
      fuzz_case.generator = "star-line";
      fuzz_case.n = 12;
      fuzz_case.seed = 53;
      fuzz_case.rounds = 64;
      dim.apply(fuzz_case);
      const auto divergence = run_differential(make_scenario(fuzz_case));
      EXPECT_FALSE(divergence.has_value())
          << dim.label << ": " << to_string(fuzz_case) << "\n  "
          << to_string(*divergence);
    }
  }
}

TEST(DifferentialFaults, CrashAndRestartEventsAreObserved) {
  // The recorded event streams must include the fault callbacks — that is
  // what makes recovery semantics diffable between the engines at all.
  FuzzCase fuzz_case;
  fuzz_case.protocol = FuzzProtocol::kBlindGossip;
  fuzz_case.generator = "clique";
  fuzz_case.n = 8;
  fuzz_case.seed = 5;
  fuzz_case.rounds = 60;
  fuzz_case.crash_prob = 0.1;
  fuzz_case.recovery_prob = 0.5;
  const Scenario scenario = make_scenario(fuzz_case);

  auto protocol = scenario.make_protocol();
  auto topology = scenario.make_topology();
  RecordingProtocol recorder(*protocol);
  Engine engine(*topology, recorder, scenario.config);
  engine.run_rounds(scenario.rounds);
  std::size_t crashes = 0, restarts = 0;
  for (const ProtocolEvent& e : recorder.events()) {
    crashes += e.kind == ProtocolEvent::Kind::kCrash;
    restarts += e.kind == ProtocolEvent::Kind::kRestart;
  }
  EXPECT_EQ(crashes, engine.telemetry().crashes());
  EXPECT_EQ(restarts, engine.telemetry().recoveries());
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(restarts, 0u);
}

TEST(DifferentialFaults, SkipRestartResetMutationIsCaught) {
  // The fault-path mutation: a reference engine that revives nodes without
  // resetting their activation round (local-round clock) or protocol state
  // must diverge from the real engine as soon as a recovery happens.
  FuzzCase fuzz_case;
  fuzz_case.protocol = FuzzProtocol::kBlindGossip;
  fuzz_case.generator = "clique";
  fuzz_case.n = 8;
  fuzz_case.seed = 5;
  fuzz_case.rounds = 60;
  fuzz_case.crash_prob = 0.1;
  fuzz_case.recovery_prob = 0.5;

  // Control: without the mutation the scenario is clean.
  ASSERT_FALSE(run_differential(make_scenario(fuzz_case)).has_value());

  DifferentialOptions options;
  options.mutation = ReferenceMutation::kSkipRestartReset;
  const auto divergence =
      run_differential(make_scenario(fuzz_case), options);
  ASSERT_TRUE(divergence.has_value())
      << "skip-restart-reset mutation was not detected";
  EXPECT_GE(divergence->round, 1u);
}

TEST(RecordingProtocol, WrappingDoesNotChangeTheExecution) {
  const Graph g = make_star_line(3, 4);
  const auto run_rounds = [&g](bool wrapped) {
    StaticGraphProvider topo(g);
    BlindGossip proto(BlindGossip::shuffled_uids(g.node_count(), 9));
    EngineConfig cfg;
    cfg.seed = 21;
    if (wrapped) {
      RecordingProtocol recorder(proto);
      Engine engine(topo, recorder, cfg);
      return run_until_stabilized(engine, 1u << 20).rounds;
    }
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 1u << 20).rounds;
  };
  EXPECT_EQ(run_rounds(false), run_rounds(true));
}

TEST(RecordingProtocol, CapturesTheFullEventStream) {
  StaticGraphProvider topo(make_clique(4));
  BlindGossip proto(BlindGossip::shuffled_uids(4, 2));
  RecordingProtocol recorder(proto);
  EngineConfig cfg;
  cfg.seed = 5;
  Engine engine(topo, recorder, cfg);
  engine.step();

  // Round one of a 4-clique: 4 advertises, 4 decides, 4 finishes, plus one
  // make/receive pair per endpoint of each established connection.
  std::size_t advertises = 0, decides = 0, finishes = 0, makes = 0,
              receives = 0;
  for (const ProtocolEvent& e : recorder.events()) {
    advertises += e.kind == ProtocolEvent::Kind::kAdvertise;
    decides += e.kind == ProtocolEvent::Kind::kDecide;
    finishes += e.kind == ProtocolEvent::Kind::kFinishRound;
    makes += e.kind == ProtocolEvent::Kind::kMakePayload;
    receives += e.kind == ProtocolEvent::Kind::kReceivePayload;
  }
  EXPECT_EQ(advertises, 4u);
  EXPECT_EQ(decides, 4u);
  EXPECT_EQ(finishes, 4u);
  EXPECT_EQ(makes, receives);
  EXPECT_EQ(makes, 2 * engine.telemetry().connections());
  EXPECT_NE(recorder.event_hash(), 0u);
}

TEST(ReferenceEngine, MatchesEngineOnStateDependentPayloads) {
  // Pairwise averaging's payload is its mutable running value — the
  // protocol most sensitive to exchange-order semantics.
  Scenario scenario;
  scenario.description = "pairwise-averaging clique";
  scenario.rounds = 40;
  scenario.config.seed = 13;
  scenario.make_protocol = []() -> std::unique_ptr<Protocol> {
    std::vector<double> values(8);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<double>(i);
    }
    return std::make_unique<PairwiseAveraging>(values, 1e-9);
  };
  scenario.make_topology = []() -> std::unique_ptr<DynamicGraphProvider> {
    return std::make_unique<StaticGraphProvider>(make_clique(8));
  };
  EXPECT_FALSE(run_differential(scenario).has_value());
}

TEST(ReferenceEngine, ProducesIdenticalStabilizationRounds) {
  // Beyond lockstep equality of observables: the reference engine, run
  // standalone, stabilizes the same protocol in the same round.
  const Graph g = make_star_line(2, 5);
  const auto stabilize = [&g](auto&& make_engine) {
    BlindGossip proto(BlindGossip::shuffled_uids(g.node_count(), 4));
    StaticGraphProvider topo(g);
    EngineConfig cfg;
    cfg.seed = 31;
    auto engine = make_engine(topo, proto, cfg);
    Round r = 0;
    while (!proto.stabilized() && r < (1u << 20)) {
      engine.step();
      ++r;
    }
    return r;
  };
  const Round real = stabilize([](auto& t, auto& p, auto c) {
    return Engine(t, p, c);
  });
  const Round reference = stabilize([](auto& t, auto& p, auto c) {
    return ReferenceEngine(t, p, c);
  });
  EXPECT_EQ(real, reference);
  EXPECT_GT(real, 0u);
}

}  // namespace
}  // namespace mtm::testing
