// The fuzz-case machinery: serialization round trips, scenario expansion
// over every topology family, and shrinking of diverging cases.
#include <gtest/gtest.h>

#include "testing/fuzz.hpp"

namespace mtm::testing {
namespace {

TEST(FuzzCase, SerializationRoundTrips) {
  for (std::size_t i = 0; i < 200; ++i) {
    Rng rng(derive_seed(0x5e71a, {i}));
    const FuzzCase original = random_fuzz_case(rng);
    const FuzzCase parsed = parse_fuzz_case(to_string(original));
    EXPECT_EQ(parsed, original) << to_string(original);
  }
}

TEST(FuzzCase, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_fuzz_case("protocol=blind-gossip n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("protocol=unknown-proto generator=clique"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=moebius-strip"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=clique n=banana"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=clique acceptance=psychic"),
               std::invalid_argument);
}

TEST(FuzzCase, EveryGeneratorExpandsAcrossTheSizeRange) {
  const char* generators[] = {"clique",    "cycle",   "path",
                              "star",      "star-line", "grid",
                              "barbell",   "random-regular",
                              "ring-of-cliques"};
  for (const char* generator : generators) {
    for (NodeId n = 2; n <= 30; n += 7) {
      FuzzCase fuzz_case;
      fuzz_case.generator = generator;
      fuzz_case.n = n;
      fuzz_case.seed = 11;
      fuzz_case.rounds = 4;
      const Scenario scenario = make_scenario(fuzz_case);
      auto topology = scenario.make_topology();
      EXPECT_GE(topology->node_count(), 2u) << generator << " n=" << n;
      // The scenario must actually run (constructor contracts included).
      EXPECT_FALSE(run_differential(scenario).has_value())
          << generator << " n=" << n;
    }
  }
}

TEST(FuzzCase, ScenarioExpansionIsDeterministic) {
  FuzzCase fuzz_case;
  fuzz_case.generator = "random-regular";
  fuzz_case.n = 12;
  fuzz_case.seed = 99;
  fuzz_case.tau = 2;
  fuzz_case.rounds = 8;
  const Scenario a = make_scenario(fuzz_case);
  const Scenario b = make_scenario(fuzz_case);
  const auto ta = a.make_topology();
  const auto tb = b.make_topology();
  EXPECT_EQ(ta->graph_at(1).edges(), tb->graph_at(1).edges());
}

TEST(Shrink, MinimizesADivergingCaseAndKeepsItDiverging) {
  // Seed a fault into the reference engine so shrinking has a real
  // divergence to preserve.
  DifferentialOptions options;
  options.mutation = ReferenceMutation::kAcceptFirstProposal;

  FuzzCase original;
  original.protocol = FuzzProtocol::kBlindGossip;
  original.generator = "star";
  original.n = 24;
  original.seed = 7;
  original.tau = 2;
  original.async_activation = true;
  original.failure_prob = 0.15;
  original.rounds = 64;
  ASSERT_TRUE(run_differential(make_scenario(original), options).has_value());

  const FuzzCase shrunk = shrink_fuzz_case(original, options);
  EXPECT_TRUE(run_differential(make_scenario(shrunk), options).has_value());
  EXPECT_LE(shrunk.n, original.n);
  EXPECT_LE(shrunk.rounds, original.rounds);
  // The simplification passes must have stripped the incidental dimensions
  // (this fault does not need failure injection or staggered starts).
  EXPECT_EQ(shrunk.failure_prob, 0.0);
  EXPECT_FALSE(shrunk.async_activation);
  EXPECT_EQ(shrunk.tau, 0u);
}

TEST(Shrink, ReturnsNonDivergingCaseUnchanged) {
  FuzzCase clean;
  clean.protocol = FuzzProtocol::kPushPull;
  clean.generator = "clique";
  clean.n = 8;
  clean.seed = 5;
  clean.rounds = 16;
  EXPECT_EQ(shrink_fuzz_case(clean), clean);
}

TEST(RunFuzz, FindsAndShrinksSeededFaults) {
  FuzzOptions options;
  options.cases = 30;
  options.seed = 0xfa117;
  options.mutation = ReferenceMutation::kDropOneConnectionBound;
  const auto failures = run_fuzz(options);
  ASSERT_FALSE(failures.empty());
  for (const FuzzFailure& failure : failures) {
    EXPECT_LE(failure.shrunk.n, failure.original.n);
    EXPECT_FALSE(failure.divergence.field.empty());
    // Every reported tuple replays: parse(to_string(.)) still diverges.
    DifferentialOptions diff;
    diff.mutation = options.mutation;
    const FuzzCase replayed = parse_fuzz_case(to_string(failure.shrunk));
    EXPECT_TRUE(
        run_differential(make_scenario(replayed), diff).has_value())
        << to_string(failure.shrunk);
  }
}

}  // namespace
}  // namespace mtm::testing
