// The fuzz-case machinery: serialization round trips, scenario expansion
// over every topology family, and shrinking of diverging cases.
#include <gtest/gtest.h>

#include "testing/fuzz.hpp"

namespace mtm::testing {
namespace {

TEST(FuzzCase, SerializationRoundTrips) {
  for (std::size_t i = 0; i < 200; ++i) {
    Rng rng(derive_seed(0x5e71a, {i}));
    const FuzzCase original = random_fuzz_case(rng);
    const FuzzCase parsed = parse_fuzz_case(to_string(original));
    EXPECT_EQ(parsed, original) << to_string(original);
  }
}

TEST(FuzzCase, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_fuzz_case("protocol=blind-gossip n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("protocol=unknown-proto generator=clique"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=moebius-strip"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=clique n=banana"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=clique acceptance=psychic"),
               std::invalid_argument);
}

TEST(FuzzCase, FaultTupleSerializationRoundTrips) {
  for (std::size_t i = 0; i < 200; ++i) {
    Rng rng(derive_seed(0xfa57a, {i}));
    const FuzzCase original = random_fuzz_case(rng, /*with_faults=*/true);
    const FuzzCase parsed = parse_fuzz_case(to_string(original));
    EXPECT_EQ(parsed, original) << to_string(original);
  }
}

TEST(FuzzCase, PreFaultTuplesKeepTheirHistoricalByteForm) {
  // Tuples recorded before the fault dimensions existed must replay byte
  // for byte: to_string only emits fault keys when they are non-default.
  const std::string historical =
      "protocol=blind-gossip generator=star n=6 tau=0 seed=3 "
      "acceptance=uniform async=0 failure=0 rounds=8";
  const FuzzCase parsed = parse_fuzz_case(historical);
  EXPECT_EQ(to_string(parsed), historical);
  EXPECT_EQ(parsed.crash_prob, 0.0);
  EXPECT_EQ(parsed.targeting, CrashTargeting::kNone);
}

TEST(FuzzCase, FaultKeysParse) {
  const FuzzCase parsed = parse_fuzz_case(
      "protocol=stable-leader generator=clique n=8 seed=2 rounds=32 "
      "crash=0.05 recover=0.3 burst=2 degrade=0.25 oracle=leader "
      "oracle-every=6");
  EXPECT_EQ(parsed.protocol, FuzzProtocol::kStableLeader);
  EXPECT_EQ(parsed.crash_prob, 0.05);
  EXPECT_EQ(parsed.recovery_prob, 0.3);
  EXPECT_EQ(parsed.burst, 2);
  EXPECT_EQ(parsed.edge_degradation, 0.25);
  EXPECT_EQ(parsed.targeting, CrashTargeting::kLeaderNode);
  EXPECT_EQ(parsed.target_every, 6u);
  EXPECT_EQ(parse_fuzz_case(to_string(parsed)), parsed);
  EXPECT_THROW(parse_fuzz_case("generator=clique oracle=nemesis"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=clique burst=7"),
               std::invalid_argument);
}

TEST(FuzzCase, AdversaryTupleSerializationRoundTrips) {
  for (std::size_t i = 0; i < 200; ++i) {
    Rng rng(derive_seed(0xad5a7, {i}));
    const FuzzCase original =
        random_fuzz_case(rng, /*with_faults=*/true, /*with_adversary=*/true);
    const FuzzCase parsed = parse_fuzz_case(to_string(original));
    EXPECT_EQ(parsed, original) << to_string(original);
  }
}

TEST(FuzzCase, AdversaryKeysParse) {
  const FuzzCase parsed = parse_fuzz_case(
      "protocol=stable-leader generator=clique n=8 seed=2 rounds=32 "
      "partition=periodic parts=3 partition-start=4 partition-duration=6 "
      "partition-period=20 byz=0.25 byz-mode=equivocate");
  EXPECT_EQ(parsed.partition, PartitionMode::kPeriodic);
  EXPECT_EQ(parsed.parts, 3u);
  EXPECT_EQ(parsed.partition_start, 4u);
  EXPECT_EQ(parsed.partition_duration, 6u);
  EXPECT_EQ(parsed.partition_period, 20u);
  EXPECT_EQ(parsed.byz_fraction, 0.25);
  EXPECT_EQ(parsed.byz_mode, ByzBehavior::kEquivocate);
  EXPECT_EQ(parse_fuzz_case(to_string(parsed)), parsed);
  EXPECT_THROW(parse_fuzz_case("generator=clique partition=moebius"),
               std::invalid_argument);
  EXPECT_THROW(parse_fuzz_case("generator=clique byz-mode=gremlin"),
               std::invalid_argument);
}

TEST(FuzzCase, PreAdversaryTuplesKeepTheirHistoricalByteForm) {
  // A fault-era tuple (no partition/byz keys) must still serialize without
  // the new keys: they are emitted only when non-default.
  const std::string historical =
      "protocol=stable-leader generator=clique n=8 tau=0 seed=2 "
      "acceptance=uniform async=0 failure=0 rounds=32 crash=0.5 "
      "recover=0.25";
  const FuzzCase parsed = parse_fuzz_case(historical);
  EXPECT_EQ(to_string(parsed), historical);
  EXPECT_EQ(parsed.partition, PartitionMode::kNone);
  EXPECT_EQ(parsed.byz_fraction, 0.0);
}

TEST(RunFuzz, FaultDimensionsSweepCleanly) {
  // The in-tree smoke version of the CI fault-fuzz job (which runs >= 500
  // cases): a fault-sampling sweep must produce zero divergences and must
  // actually exercise the fault dimensions.
  FuzzOptions options;
  options.cases = 80;
  options.seed = 0xfa0b5;
  options.with_faults = true;
  std::size_t with_churn = 0, with_links = 0, with_oracle = 0,
              stable_leader = 0;
  options.on_case = [&](std::size_t, const FuzzCase& fuzz_case) {
    with_churn += fuzz_case.crash_prob > 0.0;
    with_links += fuzz_case.burst > 0 || fuzz_case.edge_degradation > 0.0;
    with_oracle += fuzz_case.targeting != CrashTargeting::kNone;
    stable_leader += fuzz_case.protocol == FuzzProtocol::kStableLeader;
  };
  const auto failures = run_fuzz(options);
  EXPECT_TRUE(failures.empty());
  EXPECT_GT(with_churn, 0u);
  EXPECT_GT(with_links, 0u);
  EXPECT_GT(with_oracle, 0u);
  EXPECT_GT(stable_leader, 0u);
}

TEST(RunFuzz, AdversaryDimensionsSweepCleanly) {
  // The in-tree smoke version of the CI partition-fuzz job (which runs
  // >= 1000 cases): partition and Byzantine sampling under the record-only
  // invariant monitor must produce zero divergences — and zero safety
  // violations, since a monitor violation IS a divergence in this mode.
  FuzzOptions options;
  options.cases = 80;
  options.seed = 0xad0b5;
  options.with_faults = true;
  options.with_adversary = true;
  std::size_t with_partition = 0, with_byz = 0, periodic_or_flapping = 0;
  options.on_case = [&](std::size_t, const FuzzCase& fuzz_case) {
    with_partition += fuzz_case.partition != PartitionMode::kNone;
    with_byz += fuzz_case.byz_fraction > 0.0;
    periodic_or_flapping += fuzz_case.partition == PartitionMode::kPeriodic ||
                            fuzz_case.partition == PartitionMode::kFlapping;
  };
  const auto failures = run_fuzz(options);
  EXPECT_TRUE(failures.empty());
  EXPECT_GT(with_partition, 0u);
  EXPECT_GT(with_byz, 0u);
  EXPECT_GT(periodic_or_flapping, 0u);
}

TEST(Shrink, StripsIncidentalAdversaryDimensions) {
  // kAcceptFirstProposal has nothing to do with partitions or Byzantine
  // nodes, so the shrinker must strip both from a diverging tuple.
  DifferentialOptions options;
  options.mutation = ReferenceMutation::kAcceptFirstProposal;
  FuzzCase original;
  original.protocol = FuzzProtocol::kBlindGossip;
  original.generator = "star";
  original.n = 24;
  original.seed = 7;
  original.rounds = 64;
  original.partition = PartitionMode::kFlapping;
  original.parts = 3;
  original.partition_start = 4;
  original.partition_duration = 6;
  original.byz_fraction = 0.25;
  original.byz_mode = ByzBehavior::kEquivocate;
  ASSERT_TRUE(run_differential(make_scenario(original), options).has_value());
  const FuzzCase shrunk = shrink_fuzz_case(original, options);
  EXPECT_TRUE(run_differential(make_scenario(shrunk), options).has_value());
  EXPECT_EQ(shrunk.partition, PartitionMode::kNone);
  EXPECT_EQ(shrunk.byz_fraction, 0.0);
}

TEST(Shrink, StripsIncidentalFaultDimensions) {
  // kAcceptFirstProposal has nothing to do with faults, so the shrinker
  // must strip every fault dimension from a diverging fault-laden tuple.
  DifferentialOptions options;
  options.mutation = ReferenceMutation::kAcceptFirstProposal;
  FuzzCase original;
  original.protocol = FuzzProtocol::kBlindGossip;
  original.generator = "star";
  original.n = 24;
  original.seed = 7;
  original.rounds = 64;
  original.crash_prob = 0.05;
  original.recovery_prob = 0.5;
  original.burst = 1;
  original.edge_degradation = 0.25;
  original.targeting = CrashTargeting::kRandomAlive;
  original.target_every = 8;
  ASSERT_TRUE(run_differential(make_scenario(original), options).has_value());
  const FuzzCase shrunk = shrink_fuzz_case(original, options);
  EXPECT_TRUE(run_differential(make_scenario(shrunk), options).has_value());
  EXPECT_EQ(shrunk.crash_prob, 0.0);
  EXPECT_EQ(shrunk.recovery_prob, 0.0);
  EXPECT_EQ(shrunk.burst, 0);
  EXPECT_EQ(shrunk.edge_degradation, 0.0);
  EXPECT_EQ(shrunk.targeting, CrashTargeting::kNone);
  EXPECT_EQ(shrunk.target_every, 0u);
}

TEST(FuzzCase, EveryGeneratorExpandsAcrossTheSizeRange) {
  const char* generators[] = {"clique",    "cycle",   "path",
                              "star",      "star-line", "grid",
                              "barbell",   "random-regular",
                              "ring-of-cliques"};
  for (const char* generator : generators) {
    for (NodeId n = 2; n <= 30; n += 7) {
      FuzzCase fuzz_case;
      fuzz_case.generator = generator;
      fuzz_case.n = n;
      fuzz_case.seed = 11;
      fuzz_case.rounds = 4;
      const Scenario scenario = make_scenario(fuzz_case);
      auto topology = scenario.make_topology();
      EXPECT_GE(topology->node_count(), 2u) << generator << " n=" << n;
      // The scenario must actually run (constructor contracts included).
      EXPECT_FALSE(run_differential(scenario).has_value())
          << generator << " n=" << n;
    }
  }
}

TEST(FuzzCase, ScenarioExpansionIsDeterministic) {
  FuzzCase fuzz_case;
  fuzz_case.generator = "random-regular";
  fuzz_case.n = 12;
  fuzz_case.seed = 99;
  fuzz_case.tau = 2;
  fuzz_case.rounds = 8;
  const Scenario a = make_scenario(fuzz_case);
  const Scenario b = make_scenario(fuzz_case);
  const auto ta = a.make_topology();
  const auto tb = b.make_topology();
  EXPECT_EQ(ta->graph_at(1).edges(), tb->graph_at(1).edges());
}

TEST(Shrink, MinimizesADivergingCaseAndKeepsItDiverging) {
  // Seed a fault into the reference engine so shrinking has a real
  // divergence to preserve.
  DifferentialOptions options;
  options.mutation = ReferenceMutation::kAcceptFirstProposal;

  FuzzCase original;
  original.protocol = FuzzProtocol::kBlindGossip;
  original.generator = "star";
  original.n = 24;
  original.seed = 7;
  original.tau = 2;
  original.async_activation = true;
  original.failure_prob = 0.15;
  original.rounds = 64;
  ASSERT_TRUE(run_differential(make_scenario(original), options).has_value());

  const FuzzCase shrunk = shrink_fuzz_case(original, options);
  EXPECT_TRUE(run_differential(make_scenario(shrunk), options).has_value());
  EXPECT_LE(shrunk.n, original.n);
  EXPECT_LE(shrunk.rounds, original.rounds);
  // The simplification passes must have stripped the incidental dimensions
  // (this fault does not need failure injection or staggered starts).
  EXPECT_EQ(shrunk.failure_prob, 0.0);
  EXPECT_FALSE(shrunk.async_activation);
  EXPECT_EQ(shrunk.tau, 0u);
}

TEST(Shrink, ReturnsNonDivergingCaseUnchanged) {
  FuzzCase clean;
  clean.protocol = FuzzProtocol::kPushPull;
  clean.generator = "clique";
  clean.n = 8;
  clean.seed = 5;
  clean.rounds = 16;
  EXPECT_EQ(shrink_fuzz_case(clean), clean);
}

TEST(RunFuzz, FindsAndShrinksSeededFaults) {
  FuzzOptions options;
  options.cases = 30;
  options.seed = 0xfa117;
  options.mutation = ReferenceMutation::kDropOneConnectionBound;
  const auto failures = run_fuzz(options);
  ASSERT_FALSE(failures.empty());
  for (const FuzzFailure& failure : failures) {
    EXPECT_LE(failure.shrunk.n, failure.original.n);
    EXPECT_FALSE(failure.divergence.field.empty());
    // Every reported tuple replays: parse(to_string(.)) still diverges.
    DifferentialOptions diff;
    diff.mutation = options.mutation;
    const FuzzCase replayed = parse_fuzz_case(to_string(failure.shrunk));
    EXPECT_TRUE(
        run_differential(make_scenario(replayed), diff).has_value())
        << to_string(failure.shrunk);
  }
}

}  // namespace
}  // namespace mtm::testing
