#include "obs/phase_timer.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace mtm::obs {
namespace {

TEST(PhaseProfile, AddAccumulatesTotalsAndCalls) {
  PhaseProfile p;
  EXPECT_EQ(p.total(), 0u);
  p.add(Phase::kScan, 100);
  p.add(Phase::kScan, 50);
  p.add(Phase::kExchange, 350);
  EXPECT_EQ(p.total(), 500u);
  EXPECT_EQ(p.total_ns[static_cast<std::size_t>(Phase::kScan)], 150u);
  EXPECT_EQ(p.calls[static_cast<std::size_t>(Phase::kScan)], 2u);
  EXPECT_DOUBLE_EQ(p.fraction(Phase::kScan), 150.0 / 500.0);
  EXPECT_DOUBLE_EQ(p.fraction(Phase::kExchange), 350.0 / 500.0);
  EXPECT_DOUBLE_EQ(p.fraction(Phase::kFaults), 0.0);
}

TEST(PhaseProfile, FractionOfUntimedProfileIsZero) {
  const PhaseProfile p;
  EXPECT_DOUBLE_EQ(p.fraction(Phase::kScan), 0.0);
}

TEST(PhaseProfile, MergeAndReset) {
  PhaseProfile a;
  a.add(Phase::kDecide, 10);
  a.rounds = 2;
  PhaseProfile b;
  b.add(Phase::kDecide, 5);
  b.add(Phase::kFinish, 1);
  b.rounds = 3;
  a.merge(b);
  EXPECT_EQ(a.total(), 16u);
  EXPECT_EQ(a.calls[static_cast<std::size_t>(Phase::kDecide)], 2u);
  EXPECT_EQ(a.rounds, 5u);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
  EXPECT_EQ(a.rounds, 0u);
  EXPECT_EQ(a.calls[static_cast<std::size_t>(Phase::kDecide)], 0u);
}

TEST(PhaseProfile, PhaseNamesAreDistinctAndStable) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    names.insert(phase_name(static_cast<Phase>(i)));
  }
  EXPECT_EQ(names.size(), kPhaseCount);
  EXPECT_EQ(std::string(phase_name(Phase::kFaults)), "faults");
  EXPECT_EQ(std::string(phase_name(Phase::kExchange)), "exchange");
}

TEST(PhaseProfile, ToJsonMatchesDocumentedShape) {
  PhaseProfile p;
  p.add(Phase::kAdvertise, 40);
  p.add(Phase::kResolve, 60);
  p.rounds = 7;
  const JsonValue doc = p.to_json();
  EXPECT_EQ(doc.find("unit")->as_string(), "ns");
  EXPECT_EQ(doc.find("rounds")->as_u64(), 7u);
  EXPECT_EQ(doc.find("total_ns")->as_u64(), 100u);
  const JsonValue* per_phase = doc.find("per_phase");
  ASSERT_NE(per_phase, nullptr);
  ASSERT_EQ(per_phase->size(), kPhaseCount);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < per_phase->size(); ++i) {
    const JsonValue& entry = per_phase->at(i);
    EXPECT_EQ(entry.find("phase")->as_string(),
              phase_name(static_cast<Phase>(i)));
    EXPECT_EQ(entry.find("total_ns")->kind(), JsonValue::Kind::kUnsigned);
    EXPECT_EQ(entry.find("calls")->kind(), JsonValue::Kind::kUnsigned);
    fraction_sum += entry.find("fraction")->as_double();
  }
  EXPECT_DOUBLE_EQ(fraction_sum, 1.0);
  EXPECT_DOUBLE_EQ(
      per_phase->at(static_cast<std::size_t>(Phase::kResolve)).find("fraction")->as_double(),
      0.6);
}

TEST(ScopedPhaseTimer, RecordsElapsedTimeIntoProfile) {
  PhaseProfile p;
  {
    ScopedPhaseTimer timer(&p, Phase::kScan);
    // Do a little work so the elapsed time is measurable on coarse clocks.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_EQ(p.calls[static_cast<std::size_t>(Phase::kScan)], 1u);
}

TEST(ScopedPhaseTimer, NullProfileIsANoOp) {
  ScopedPhaseTimer timer(nullptr, Phase::kScan);  // must not crash or record
}

}  // namespace
}  // namespace mtm::obs
