// The observability layer's central promise: attaching trace sinks and
// phase profiles to an engine changes NOTHING about the execution. RNG
// streams, telemetry counters, per-round records, and stabilization
// behaviour must be byte-identical with and without instrumentation
// (engine.hpp documents the contract; this file enforces it).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "graph/generators.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace_sink.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

/// Everything deterministic an execution produces.
struct Fingerprint {
  Round rounds = 0;
  bool converged = false;
  std::uint64_t proposals = 0;
  std::uint64_t connections = 0;
  std::uint64_t dropped = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t wasted_rounds = 0;
  std::uint64_t payload_uids = 0;
  std::vector<RoundStats> per_round;
};

bool same_stats(const RoundStats& a, const RoundStats& b) {
  return a.round == b.round && a.active_nodes == b.active_nodes &&
         a.proposals == b.proposals && a.connections == b.connections &&
         a.dropped == b.dropped && a.crashes == b.crashes &&
         a.recoveries == b.recoveries;
}

bool same_fingerprint(const Fingerprint& a, const Fingerprint& b) {
  if (a.per_round.size() != b.per_round.size()) return false;
  for (std::size_t i = 0; i < a.per_round.size(); ++i) {
    if (!same_stats(a.per_round[i], b.per_round[i])) return false;
  }
  return a.rounds == b.rounds && a.converged == b.converged &&
         a.proposals == b.proposals && a.connections == b.connections &&
         a.dropped == b.dropped && a.crashes == b.crashes &&
         a.recoveries == b.recoveries && a.wasted_rounds == b.wasted_rounds &&
         a.payload_uids == b.payload_uids;
}

/// A run with every failure mode active: connection failures, churn, and
/// recoveries, so the differential covers the fault code paths too.
Fingerprint faulty_run(obs::TraceSink* sink, obs::PhaseProfile* profile) {
  StaticGraphProvider topo(make_clique(10));
  BlindGossip proto(BlindGossip::shuffled_uids(10, 77));
  EngineConfig cfg;
  cfg.seed = 77;
  cfg.record_rounds = true;
  cfg.connection_failure_prob = 0.1;
  cfg.faults.crash_prob = 0.05;
  cfg.faults.recovery_prob = 0.5;
  cfg.faults.min_alive = 4;
  cfg.faults.seed = derive_seed(77, {0xfau});
  Engine engine(topo, proto, cfg);
  if (sink != nullptr) engine.set_trace_sink(sink);
  if (profile != nullptr) engine.set_phase_profile(profile);
  const RunResult result = run_until_stabilized(engine, 512);

  Fingerprint fp;
  fp.rounds = result.rounds;
  fp.converged = result.converged;
  const Telemetry& t = engine.telemetry();
  fp.proposals = t.proposals();
  fp.connections = t.connections();
  fp.dropped = t.dropped();
  fp.crashes = t.crashes();
  fp.recoveries = t.recoveries();
  fp.wasted_rounds = t.wasted_rounds();
  fp.payload_uids = t.payload_uids();
  fp.per_round = t.per_round();
  return fp;
}

TEST(ZeroPerturbation, SinksAndProfileDoNotPerturbExecution) {
  const Fingerprint bare = faulty_run(nullptr, nullptr);
  ASSERT_GT(bare.rounds, 0u);

  obs::RingTraceSink ring;
  obs::PhaseProfile profile;
  const Fingerprint traced = faulty_run(&ring, &profile);
  EXPECT_TRUE(same_fingerprint(bare, traced));
  EXPECT_FALSE(ring.events().empty());
  EXPECT_EQ(profile.rounds, bare.rounds);
  EXPECT_GT(profile.calls[static_cast<std::size_t>(obs::Phase::kAdvertise)],
            0u);

  const std::string path =
      testing::TempDir() + "zero_perturbation_trace.jsonl";
  obs::JsonlTraceSink file_sink(path);
  obs::PhaseProfile profile2;
  const Fingerprint jsonl_traced = faulty_run(&file_sink, &profile2);
  EXPECT_TRUE(same_fingerprint(bare, jsonl_traced));
  EXPECT_GT(file_sink.events_written(), 0u);
}

TEST(ZeroPerturbation, TraceStreamIsDeterministic) {
  obs::RingTraceSink first;
  obs::RingTraceSink second;
  faulty_run(&first, nullptr);
  faulty_run(&second, nullptr);
  ASSERT_EQ(first.events().size(), second.events().size());
  for (std::size_t i = 0; i < first.events().size(); ++i) {
    EXPECT_EQ(first.events()[i], second.events()[i]);
  }
}

TEST(ZeroPerturbation, RoundEventsMirrorTelemetry) {
  obs::RingTraceSink ring;
  const Fingerprint fp = faulty_run(&ring, nullptr);

  std::size_t round_events = 0;
  std::uint64_t crash_events = 0;
  std::uint64_t recover_events = 0;
  for (const obs::TraceEvent& event : ring.events()) {
    if (event.kind == "crash") {
      ++crash_events;
      continue;
    }
    if (event.kind == "recover") {
      ++recover_events;
      continue;
    }
    ASSERT_EQ(event.kind, "round");  // the only kinds the engine emits
    ASSERT_LT(round_events, fp.per_round.size());
    const RoundStats& stats = fp.per_round[round_events];
    const obs::JsonValue doc = event.to_json();
    EXPECT_EQ(event.round, stats.round);
    EXPECT_EQ(doc.find("active")->as_u64(), stats.active_nodes);
    EXPECT_EQ(doc.find("proposals")->as_u64(), stats.proposals);
    EXPECT_EQ(doc.find("connections")->as_u64(), stats.connections);
    EXPECT_EQ(doc.find("dropped")->as_u64(), stats.dropped);
    EXPECT_EQ(doc.find("crashes")->as_u64(), stats.crashes);
    EXPECT_EQ(doc.find("recoveries")->as_u64(), stats.recoveries);
    ++round_events;
  }
  EXPECT_EQ(round_events, fp.per_round.size());
  EXPECT_EQ(round_events, fp.rounds);
  EXPECT_EQ(crash_events, fp.crashes);
  EXPECT_EQ(recover_events, fp.recoveries);
}

TEST(ZeroPerturbation, GoldenTraceOfSeededThreeNodeRun) {
  // 3-node clique, no faults, no failure injection: the stream is exactly
  // one "round" event per executed round, and the serialized form is the
  // pinned golden format — kind and round first, then the counter deltas
  // in emission order.
  StaticGraphProvider topo(make_clique(3));
  BlindGossip proto({30, 10, 20});
  EngineConfig cfg;
  cfg.seed = 5;
  cfg.record_rounds = true;
  Engine engine(topo, proto, cfg);
  obs::RingTraceSink ring;
  engine.set_trace_sink(&ring);
  const RunResult result = run_until_stabilized(engine, 64);
  ASSERT_TRUE(result.converged);

  const Telemetry& t = engine.telemetry();
  ASSERT_EQ(ring.events().size(), t.per_round().size());
  for (std::size_t i = 0; i < ring.events().size(); ++i) {
    const RoundStats& stats = t.per_round()[i];
    std::ostringstream expected;
    expected << R"({"kind":"round","round":)" << stats.round
             << R"(,"active":)" << stats.active_nodes << R"(,"proposals":)"
             << stats.proposals << R"(,"connections":)" << stats.connections
             << R"(,"dropped":0,"crashes":0,"recoveries":0})";
    EXPECT_EQ(ring.events()[i].to_jsonl(), expected.str());
    EXPECT_EQ(ring.events()[i].to_json().find("active")->as_u64(), 3u);
  }
}

/// The faulty run with a periodic partition layered on, optionally watched
/// by the invariant monitor. Fixed-length so the fingerprints line up
/// round for round regardless of stabilization.
Fingerprint partitioned_run(InvariantMonitor* monitor) {
  StaticGraphProvider topo(make_clique(10));
  const std::vector<Uid> uids = BlindGossip::shuffled_uids(10, 77);
  BlindGossip proto(uids);
  EngineConfig cfg;
  cfg.seed = 77;
  cfg.record_rounds = true;
  cfg.connection_failure_prob = 0.1;
  cfg.faults.crash_prob = 0.05;
  cfg.faults.recovery_prob = 0.5;
  cfg.faults.min_alive = 4;
  cfg.faults.partition.mode = PartitionMode::kPeriodic;
  cfg.faults.partition.parts = 2;
  cfg.faults.partition.start = 8;
  cfg.faults.partition.duration = 4;
  cfg.faults.partition.period = 24;
  cfg.faults.seed = derive_seed(77, {0xfau});
  Engine engine(topo, proto, cfg);
  if (monitor != nullptr) {
    monitor->set_expected_uids(uids);
    engine.set_invariant_monitor(monitor);
  }
  engine.run_rounds(256);

  Fingerprint fp;
  fp.rounds = engine.rounds_executed();
  fp.converged = proto.stabilized();
  const Telemetry& t = engine.telemetry();
  fp.proposals = t.proposals();
  fp.connections = t.connections();
  fp.dropped = t.dropped();
  fp.crashes = t.crashes();
  fp.recoveries = t.recoveries();
  fp.wasted_rounds = t.wasted_rounds();
  fp.payload_uids = t.payload_uids();
  fp.per_round = t.per_round();
  return fp;
}

TEST(ZeroPerturbation, InvariantMonitorDoesNotPerturbExecution) {
  // The monitor's contract (sim/invariants.hpp): it only READS engine state
  // after each round, draws from no RNG stream and feeds nothing back, so a
  // churning, partitioned run is byte-identical with and without it — while
  // the monitor itself demonstrably observed the run (heal events landed).
  const Fingerprint bare = partitioned_run(nullptr);
  InvariantMonitor monitor(
      InvariantConfig{/*fail_fast=*/false, /*settle_rounds=*/80});
  const Fingerprint watched = partitioned_run(&monitor);
  EXPECT_TRUE(same_fingerprint(bare, watched));
  EXPECT_GT(monitor.report().heals, 0u);
}

TEST(ZeroPerturbation, JsonlFileIsByteIdenticalAcrossRuns) {
  const auto write_trace = [](const std::string& path) {
    obs::JsonlTraceSink sink(path);
    faulty_run(&sink, nullptr);
    sink.flush();
  };
  const std::string a = testing::TempDir() + "trace_run_a.jsonl";
  const std::string b = testing::TempDir() + "trace_run_b.jsonl";
  write_trace(a);
  write_trace(b);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const std::string text = slurp(a);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text, slurp(b));
}

}  // namespace
}  // namespace mtm
