#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace mtm::obs {
namespace {

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(10);
  EXPECT_EQ(c.value(), 11u);
}

TEST(Gauge, KeepsLastWrittenValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(FixedHistogram, RejectsBadBounds) {
  EXPECT_THROW(FixedHistogram({}), std::invalid_argument);
  EXPECT_THROW(FixedHistogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(FixedHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(FixedHistogram, BucketsByInclusiveUpperBoundWithOverflow) {
  FixedHistogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (inclusive)
  h.record(7.0);    // <= 10
  h.record(100.0);  // <= 100
  h.record(1e6);    // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 100.0 + 1e6);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

TEST(FixedHistogram, ExponentialBoundsFormGeometricLadder) {
  const std::vector<double> bounds = FixedHistogram::exponential_bounds(0.5, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.5);
  EXPECT_DOUBLE_EQ(bounds[1], 1.0);
  EXPECT_DOUBLE_EQ(bounds[2], 2.0);
  EXPECT_DOUBLE_EQ(bounds[3], 4.0);
  EXPECT_THROW(FixedHistogram::exponential_bounds(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW(FixedHistogram::exponential_bounds(0.5, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW(FixedHistogram::exponential_bounds(0.5, 2.0, 0),
               std::invalid_argument);
}

TEST(MetricRegistry, FetchOrCreateReturnsStableReferences) {
  MetricRegistry reg;
  EXPECT_TRUE(reg.empty());
  Counter& c = reg.counter("trials_run");
  EXPECT_FALSE(reg.empty());
  c.increment(3);
  EXPECT_EQ(&reg.counter("trials_run"), &c);
  EXPECT_EQ(reg.counter("trials_run").value(), 3u);

  Gauge& g = reg.gauge("threads");
  g.set(4.0);
  EXPECT_EQ(&reg.gauge("threads"), &g);

  FixedHistogram& h = reg.histogram("wall_ms", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("wall_ms", {1.0, 2.0}), &h);
}

TEST(MetricRegistry, HistogramRefetchWithDifferentBoundsThrows) {
  MetricRegistry reg;
  reg.histogram("wall_ms", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("wall_ms", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("wall_ms", {1.0}), std::invalid_argument);
}

TEST(MetricRegistry, SnapshotHasDocumentedShape) {
  MetricRegistry reg;
  reg.counter("events").increment(7);
  reg.gauge("threads").set(2.0);
  FixedHistogram& h = reg.histogram("lat", {1.0, 10.0});
  h.record(0.5);
  h.record(99.0);  // overflow

  const JsonValue snap = reg.snapshot();
  ASSERT_TRUE(snap.is_object());
  EXPECT_EQ(snap.find("counters")->find("events")->as_u64(), 7u);
  EXPECT_DOUBLE_EQ(snap.find("gauges")->find("threads")->as_double(), 2.0);

  const JsonValue* lat = snap.find("histograms")->find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_u64(), 2u);
  EXPECT_DOUBLE_EQ(lat->find("sum")->as_double(), 99.5);
  EXPECT_DOUBLE_EQ(lat->find("mean")->as_double(), 49.75);
  const JsonValue* buckets = lat->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(buckets->at(0).find("le")->as_double(), 1.0);
  EXPECT_EQ(buckets->at(0).find("count")->as_u64(), 1u);
  EXPECT_EQ(buckets->at(2).find("count")->as_u64(), 1u);
}

}  // namespace
}  // namespace mtm::obs
