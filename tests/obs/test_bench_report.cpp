#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/stats.hpp"
#include "harness/sweep.hpp"

namespace mtm::obs {
namespace {

ScalingSeries make_series() {
  ScalingSeries series("rounds vs n", "n");
  const std::vector<double> samples{4.0, 5.0, 6.0, 8.0};
  series.add(SeriesPoint{16.0, summarize(samples), 4.0, ""});
  series.add(SeriesPoint{64.0, summarize(samples), 6.0, "dense"});
  return series;
}

/// A report exercising every optional section.
struct FullReport {
  ScalingSeries series = make_series();
  PhaseProfile phases;
  MetricRegistry metrics;
  BenchReport report;

  FullReport() {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      phases.add(static_cast<Phase>(i), (i + 1) * 100);
    }
    phases.rounds = 12;
    metrics.counter("trials_run").increment(8);
    report.name = "engine_throughput";
    report.manifest =
        make_run_manifest("bench_engine_throughput", 0xe17, 4);
    report.series.push_back(&series);
    report.phases = &phases;
    report.metrics = &metrics;
    report.extra.set("note", JsonValue::string("test"));
  }
};

TEST(BenchReport, FullyPopulatedReportValidatesClean) {
  const FullReport full;
  const JsonValue doc = full.report.to_json();
  const std::vector<std::string> errors = validate_bench_report(doc);
  EXPECT_TRUE(errors.empty()) << errors.front();

  EXPECT_EQ(doc.find("schema")->as_string(), kBenchJsonSchemaVersion);
  EXPECT_EQ(doc.find("name")->as_string(), "engine_throughput");
  EXPECT_EQ(doc.find("manifest")->find("seed")->as_u64(), 0xe17u);
  ASSERT_EQ(doc.find("series")->size(), 1u);
  EXPECT_EQ(doc.find("series")->at(0).find("points")->size(), 2u);
  EXPECT_EQ(doc.find("phases")->find("rounds")->as_u64(), 12u);
  EXPECT_EQ(doc.find("metrics")->find("counters")->find("trials_run")->as_u64(),
            8u);
  EXPECT_EQ(doc.find("extra")->find("note")->as_string(), "test");
}

TEST(BenchReport, SerializedRoundTripValidatesClean) {
  const FullReport full;
  const std::string text = full.report.to_json().dump(2);
  EXPECT_TRUE(validate_bench_report_text(text).empty());
}

TEST(BenchReport, OptionalSectionsOmittedWhenEmpty) {
  BenchReport report;
  report.name = "minimal";
  report.manifest = make_run_manifest("bench_minimal", 1, 1);
  const JsonValue doc = report.to_json();
  EXPECT_TRUE(validate_bench_report(doc).empty());
  EXPECT_EQ(doc.find("phases"), nullptr);   // no attached profile
  EXPECT_EQ(doc.find("metrics"), nullptr);  // no attached registry
  EXPECT_EQ(doc.find("extra"), nullptr);    // empty extra object
  EXPECT_EQ(doc.find("series")->size(), 0u);
}

TEST(BenchReport, EmptyPhaseProfileIsOmitted) {
  PhaseProfile untouched;
  BenchReport report;
  report.name = "minimal";
  report.manifest = make_run_manifest("bench_minimal", 1, 1);
  report.phases = &untouched;  // attached but never timed
  EXPECT_EQ(report.to_json().find("phases"), nullptr);
}

/// Returns true when some violation message contains `needle`.
bool has_violation(const std::vector<std::string>& errors,
                   const std::string& needle) {
  for (const std::string& e : errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(BenchReportValidation, CatchesSchemaAndManifestViolations) {
  const FullReport full;
  JsonValue doc = full.report.to_json();

  JsonValue wrong_schema = doc;
  wrong_schema.set("schema", JsonValue::string("mtm-bench/0"));
  EXPECT_TRUE(has_violation(validate_bench_report(wrong_schema), "schema"));

  JsonValue bad_manifest = doc;
  JsonValue manifest = JsonValue::object();  // missing every required key
  bad_manifest.set("manifest", std::move(manifest));
  const auto errors = validate_bench_report(bad_manifest);
  EXPECT_TRUE(has_violation(errors, "manifest.schema"));
  EXPECT_TRUE(has_violation(errors, "manifest.tool"));
  EXPECT_TRUE(has_violation(errors, "manifest.seed"));
  EXPECT_TRUE(has_violation(errors, "manifest.threads"));
  EXPECT_TRUE(has_violation(errors, "manifest.build"));
  EXPECT_TRUE(has_violation(errors, "manifest.compiler"));
  EXPECT_TRUE(has_violation(errors, "manifest.config"));
}

TEST(BenchReportValidation, CatchesPhaseAndMetricsViolations) {
  const FullReport full;
  JsonValue doc = full.report.to_json();

  JsonValue bad_phases = doc;
  JsonValue phases = full.phases.to_json();
  JsonValue truncated = JsonValue::array();
  truncated.push_back(phases.find("per_phase")->at(0));
  phases.set("per_phase", std::move(truncated));
  bad_phases.set("phases", std::move(phases));
  EXPECT_TRUE(has_violation(validate_bench_report(bad_phases),
                            "phases.per_phase"));

  JsonValue bad_fraction = doc;
  JsonValue phases2 = full.phases.to_json();
  JsonValue entry = phases2.find("per_phase")->at(0);
  entry.set("fraction", JsonValue::number(1.5));
  JsonValue per_phase = *phases2.find("per_phase");
  // Rebuild with the corrupted first entry.
  JsonValue rebuilt = JsonValue::array();
  rebuilt.push_back(std::move(entry));
  for (std::size_t i = 1; i < per_phase.size(); ++i) {
    rebuilt.push_back(per_phase.at(i));
  }
  phases2.set("per_phase", std::move(rebuilt));
  bad_fraction.set("phases", std::move(phases2));
  EXPECT_TRUE(has_violation(validate_bench_report(bad_fraction), "fraction"));

  JsonValue bad_metrics = doc;
  bad_metrics.set("metrics", JsonValue::string("nope"));
  EXPECT_TRUE(has_violation(validate_bench_report(bad_metrics), "metrics"));
}

TEST(BenchReportValidation, MissingTopLevelKeysAreReported) {
  JsonValue doc = JsonValue::object();
  const auto errors = validate_bench_report(doc);
  EXPECT_TRUE(has_violation(errors, "schema"));
  EXPECT_TRUE(has_violation(errors, "name"));
  EXPECT_TRUE(has_violation(errors, "manifest"));
  EXPECT_TRUE(has_violation(errors, "series"));
  EXPECT_TRUE(has_violation(validate_bench_report(JsonValue::null()),
                            "must be a JSON object"));
}

TEST(BenchReportValidation, TextEntryPointReportsParseErrors) {
  const std::vector<std::string> errors = validate_bench_report_text("{nope");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().rfind("parse:", 0), 0u);
}

TEST(BenchReport, ResilienceEchoEmittedOnlyWhenEnabled) {
  BenchReport report;
  report.name = "soak";
  report.manifest = make_run_manifest("mtm_soak", 1, 1);
  // Disabled (the default): plain benches keep their old shape exactly.
  EXPECT_EQ(report.to_json().find("partial"), nullptr);

  report.resilience.enabled = true;
  report.resilience.partial = true;
  report.resilience.resumed_trials = 5;
  report.resilience.trials_recorded = 12;
  report.resilience.quarantined_seeds = {0xdeadull, 0xbeefull};
  report.resilience.journal_fingerprint = "0123456789abcdef";
  const JsonValue doc = report.to_json();
  EXPECT_TRUE(validate_bench_report(doc).empty());
  EXPECT_TRUE(doc.find("partial")->as_bool());
  EXPECT_EQ(doc.find("resumed_trials")->as_u64(), 5u);
  EXPECT_EQ(doc.find("trials_recorded")->as_u64(), 12u);
  ASSERT_EQ(doc.find("quarantined_seeds")->size(), 2u);
  EXPECT_EQ(doc.find("quarantined_seeds")->at(0).as_u64(), 0xdeadull);
  EXPECT_EQ(doc.find("journal_fingerprint")->as_string(),
            "0123456789abcdef");
}

TEST(BenchReportValidation, PartialRequiresCompanionFields) {
  BenchReport base;
  base.name = "soak";
  base.manifest = make_run_manifest("mtm_soak", 1, 1);
  JsonValue doc = base.to_json();
  // A report claiming partiality without its trial accounting is unusable
  // for the resume-diff CI check.
  doc.set("partial", JsonValue::boolean(true));
  const auto errors = validate_bench_report(doc);
  EXPECT_TRUE(has_violation(errors, "resumed_trials"));
  EXPECT_TRUE(has_violation(errors, "trials_recorded"));
  EXPECT_TRUE(has_violation(errors, "quarantined_seeds"));
}

TEST(BenchReportValidation, ResilienceFieldTypesAreChecked) {
  BenchReport base;
  base.name = "soak";
  base.manifest = make_run_manifest("mtm_soak", 1, 1);
  base.resilience.enabled = true;
  base.resilience.journal_fingerprint = "0123456789abcdef";

  JsonValue bad_partial = base.to_json();
  bad_partial.set("partial", JsonValue::string("yes"));
  EXPECT_TRUE(has_violation(validate_bench_report(bad_partial), "partial"));

  JsonValue bad_seeds = base.to_json();
  JsonValue seeds = JsonValue::array();
  seeds.push_back(JsonValue::string("not-a-seed"));
  bad_seeds.set("quarantined_seeds", std::move(seeds));
  EXPECT_TRUE(has_violation(validate_bench_report(bad_seeds),
                            "quarantined_seeds[0]"));

  JsonValue bad_fp = base.to_json();
  bad_fp.set("journal_fingerprint", JsonValue::string("xyz"));
  EXPECT_TRUE(
      has_violation(validate_bench_report(bad_fp), "journal_fingerprint"));
}

}  // namespace
}  // namespace mtm::obs
