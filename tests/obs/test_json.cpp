#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mtm::obs {
namespace {

TEST(Json, ScalarKindsAndAccessors) {
  EXPECT_TRUE(JsonValue::null().is_null());
  EXPECT_TRUE(JsonValue::boolean(true).as_bool());
  EXPECT_FALSE(JsonValue::boolean(false).as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::number(1.5).as_double(), 1.5);
  EXPECT_EQ(JsonValue::unsigned_number(42).as_u64(), 42u);
  EXPECT_EQ(JsonValue::string("hi").as_string(), "hi");
}

TEST(Json, UnsignedPreservesFull64Bits) {
  // Seeds are full 64-bit values; a double representation would truncate
  // anything past 2^53. This seed has low bits a double cannot hold.
  const std::uint64_t seed = 0x8000000000000001ULL;
  const JsonValue v = JsonValue::unsigned_number(seed);
  EXPECT_EQ(v.as_u64(), seed);
  const JsonValue back = parse_json(v.dump());
  EXPECT_EQ(back.kind(), JsonValue::Kind::kUnsigned);
  EXPECT_EQ(back.as_u64(), seed);
}

TEST(Json, ObjectIsInsertionOrderedAndSetReplaces) {
  JsonValue obj = JsonValue::object();
  obj.set("b", JsonValue::unsigned_number(1));
  obj.set("a", JsonValue::unsigned_number(2));
  obj.set("b", JsonValue::unsigned_number(3));  // replace, keep position
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "b");
  EXPECT_EQ(obj.members()[1].first, "a");
  EXPECT_EQ(obj.find("b")->as_u64(), 3u);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_EQ(obj.dump(), R"({"b":3,"a":2})");
}

TEST(Json, ArrayAccess) {
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::unsigned_number(1));
  arr.push_back(JsonValue::string("x"));
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.at(0).as_u64(), 1u);
  EXPECT_EQ(arr.at(1).as_string(), "x");
  EXPECT_EQ(arr.dump(), R"([1,"x"])");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  const JsonValue v = JsonValue::string("line1\nline2");
  EXPECT_EQ(parse_json(v.dump()).as_string(), "line1\nline2");
}

TEST(Json, RoundTripNestedDocument) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue::string("bench"));
  JsonValue inner = JsonValue::array();
  inner.push_back(JsonValue::number(-2.5));
  inner.push_back(JsonValue::boolean(true));
  inner.push_back(JsonValue::null());
  doc.set("items", std::move(inner));
  const JsonValue back = parse_json(doc.dump(2));
  EXPECT_EQ(back.dump(), doc.dump());
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(JsonValue::number(std::nan("")).dump(), "null");
  EXPECT_EQ(JsonValue::number(HUGE_VAL).dump(), "null");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1,]"), std::invalid_argument);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(parse_json("12 34"), std::invalid_argument);
  EXPECT_THROW(parse_json("nul"), std::invalid_argument);
}

TEST(Json, ParseAcceptsNegativeAndFractionalNumbers) {
  EXPECT_DOUBLE_EQ(parse_json("-3.25").as_double(), -3.25);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  // Negative integers are kNumber (kUnsigned is non-negative only).
  EXPECT_EQ(parse_json("-7").kind(), JsonValue::Kind::kNumber);
  EXPECT_EQ(parse_json("7").kind(), JsonValue::Kind::kUnsigned);
}

}  // namespace
}  // namespace mtm::obs
