#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mtm::obs {
namespace {

TraceEvent sample_event(std::uint64_t round) {
  return TraceEvent("round", round)
      .with("active", std::uint64_t{9})
      .with("rate", 0.5)
      .with("note", std::string("ok"));
}

TEST(TraceEvent, JsonlFormPreservesEmissionOrder) {
  // Field order is part of the golden-trace contract: kind and round lead,
  // then the fields exactly as .with() appended them.
  EXPECT_EQ(sample_event(3).to_jsonl(),
            R"({"kind":"round","round":3,"active":9,"rate":0.5,"note":"ok"})");
}

TEST(TraceEvent, EqualityComparesSerializedForm) {
  EXPECT_EQ(sample_event(3), sample_event(3));
  EXPECT_FALSE(sample_event(3) == sample_event(4));
  TraceEvent other = sample_event(3);
  other.with("extra", std::uint64_t{1});
  EXPECT_FALSE(sample_event(3) == other);
}

TEST(RingTraceSink, UnboundedKeepsEverything) {
  RingTraceSink ring;  // capacity 0 = unbounded
  for (std::uint64_t r = 1; r <= 100; ++r) ring.emit(sample_event(r));
  EXPECT_EQ(ring.events().size(), 100u);
  EXPECT_EQ(ring.evicted(), 0u);
  EXPECT_EQ(ring.events().front().round, 1u);
  EXPECT_EQ(ring.events().back().round, 100u);
}

TEST(RingTraceSink, BoundedEvictsOldestAndCounts) {
  RingTraceSink ring(3);
  for (std::uint64_t r = 1; r <= 5; ++r) ring.emit(sample_event(r));
  ASSERT_EQ(ring.events().size(), 3u);
  EXPECT_EQ(ring.evicted(), 2u);
  EXPECT_EQ(ring.events().front().round, 3u);
  EXPECT_EQ(ring.events().back().round, 5u);
  ring.clear();
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.evicted(), 0u);
}

TEST(JsonlTraceSink, WritesOneParseableJsonObjectPerLine) {
  const std::string path = testing::TempDir() + "trace_sink_test.jsonl";
  {
    JsonlTraceSink sink(path);
    sink.emit(sample_event(1));
    sink.emit(sample_event(2));
    sink.flush();
    EXPECT_EQ(sink.events_written(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::uint64_t expected_round = 1;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const JsonValue doc = parse_json(line);
    EXPECT_EQ(doc.find("kind")->as_string(), "round");
    EXPECT_EQ(doc.find("round")->as_u64(), expected_round++);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(JsonlTraceSink, ThrowsWhenTargetCannotBeOpened) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir-for-sure/trace.jsonl"),
               std::runtime_error);
}

TEST(NullTraceSink, DiscardsSilently) {
  NullTraceSink null;
  TraceSink& sink = null;
  sink.emit(sample_event(1));
  sink.flush();  // default no-op
}

}  // namespace
}  // namespace mtm::obs
