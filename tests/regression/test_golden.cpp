// Golden regression pins: exact stabilization rounds for fixed
// (algorithm, topology, seed) combinations.
//
// The library promises bit-for-bit reproducibility from seeds, so these
// values must never drift. A failure here means the random stream layout,
// engine round mechanics, or an algorithm's decision logic changed —
// which invalidates every recorded experiment in EXPERIMENTS.md. If a
// change is INTENTIONAL (e.g. a deliberate protocol fix), regenerate the
// constants and re-run the full bench suite.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "protocols/async_bit_convergence.hpp"
#include "protocols/bit_convergence.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/k_gossip.hpp"
#include "protocols/ppush.hpp"
#include "protocols/leader_consensus.hpp"
#include "protocols/multibit_convergence.hpp"
#include "protocols/pairwise_averaging.hpp"
#include "protocols/round_robin_gossip.hpp"
#include "protocols/stable_leader.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

/// Runs three seeded trials of `make(trial)` on K10 and returns the rounds.
template <typename Factory>
std::vector<Round> clique10_rounds(Factory make, int tag_bits,
                                   std::uint64_t seed) {
  std::vector<Round> out;
  for (std::uint64_t t = 0; t < 3; ++t) {
    StaticGraphProvider topo(make_clique(10));
    auto proto = make(t);
    EngineConfig cfg;
    cfg.tag_bits = tag_bits;
    cfg.seed = derive_seed(seed, {t});
    Engine engine(topo, *proto, cfg);
    out.push_back(run_until_stabilized(engine, 1u << 22).rounds);
  }
  return out;
}

std::vector<Round> leader_rounds(LeaderAlgo algo, Graph g,
                                 std::uint64_t seed) {
  LeaderExperiment spec;
  spec.algo = algo;
  spec.node_count = g.node_count();
  spec.max_degree_bound = g.max_degree();
  spec.network_size_bound = g.node_count();
  spec.topology = static_topology(std::move(g));
  spec.controls.max_rounds = 1u << 22;
  spec.controls.trials = 3;
  spec.controls.seed = seed;
  std::vector<Round> out;
  for (const RunResult& r : run_leader_experiment(spec)) {
    out.push_back(r.rounds);
  }
  return out;
}

TEST(Golden, BlindGossipClique12) {
  EXPECT_EQ(leader_rounds(LeaderAlgo::kBlindGossip, make_clique(12), 101),
            (std::vector<Round>{8, 11, 14}));
}

TEST(Golden, BlindGossipStarLine3x4) {
  EXPECT_EQ(
      leader_rounds(LeaderAlgo::kBlindGossip, make_star_line(3, 4), 102),
      (std::vector<Round>{33, 100, 86}));
}

TEST(Golden, BitConvergenceClique12) {
  EXPECT_EQ(
      leader_rounds(LeaderAlgo::kBitConvergence, make_clique(12), 103),
      (std::vector<Round>{65, 129, 129}));
}

TEST(Golden, AsyncBitConvergenceStarLine3x4) {
  EXPECT_EQ(leader_rounds(LeaderAlgo::kAsyncBitConvergence,
                          make_star_line(3, 4), 104),
            (std::vector<Round>{319, 223, 661}));
}

TEST(Golden, ClassicalGossipCycle12) {
  EXPECT_EQ(
      leader_rounds(LeaderAlgo::kClassicalGossip, make_cycle(12), 105),
      (std::vector<Round>{5, 6, 4}));
}

TEST(Golden, PpushStarLine3x4) {
  RumorExperiment spec;
  spec.algo = RumorAlgo::kPpush;
  spec.node_count = 15;
  spec.topology = static_topology(make_star_line(3, 4));
  spec.controls.max_rounds = 1u << 22;
  spec.controls.trials = 3;
  spec.controls.seed = 106;
  std::vector<Round> out;
  for (const RunResult& r : run_rumor_experiment(spec)) {
    out.push_back(r.rounds);
  }
  EXPECT_EQ(out, (std::vector<Round>{10, 11, 10}));
}

TEST(Golden, MultibitConvergenceWidth2Clique10) {
  const auto rounds = clique10_rounds(
      [](std::uint64_t t) {
        MultibitConvergenceConfig c;
        c.network_size_bound = 10;
        c.max_degree_bound = 9;
        c.advertisement_width = 2;
        return std::make_unique<MultibitConvergence>(
            BlindGossip::shuffled_uids(10, t), c);
      },
      2, 201);
  EXPECT_EQ(rounds, (std::vector<Round>{97, 65, 65}));
}

TEST(Golden, LeaderConsensusClique10) {
  const auto rounds = clique10_rounds(
      [](std::uint64_t) {
        AsyncBitConvergenceConfig c;
        c.network_size_bound = 10;
        c.max_degree_bound = 9;
        std::vector<Uid> uids(10);
        std::vector<std::uint64_t> inputs(10);
        for (NodeId u = 0; u < 10; ++u) {
          uids[u] = 40 + u;
          inputs[u] = 1000 + u;
        }
        return std::make_unique<LeaderConsensus>(uids, inputs, c);
      },
      5, 202);
  EXPECT_EQ(rounds, (std::vector<Round>{57, 65, 89}));
}

TEST(Golden, PairwiseAveragingClique10) {
  const auto rounds = clique10_rounds(
      [](std::uint64_t) {
        std::vector<double> values(10);
        for (int i = 0; i < 10; ++i) values[i] = i;
        return std::make_unique<PairwiseAveraging>(values, 1e-6);
      },
      0, 203);
  EXPECT_EQ(rounds, (std::vector<Round>{104, 94, 141}));
}

TEST(Golden, KGossipClique10) {
  const auto rounds = clique10_rounds(
      [](std::uint64_t) { return std::make_unique<KGossip>(); }, 0, 204);
  EXPECT_EQ(rounds, (std::vector<Round>{109, 130, 148}));
}

TEST(Golden, RoundRobinGossipClique10) {
  const auto rounds = clique10_rounds(
      [](std::uint64_t t) {
        return std::make_unique<RoundRobinGossip>(
            BlindGossip::shuffled_uids(10, t));
      },
      0, 205);
  EXPECT_EQ(rounds, (std::vector<Round>{25, 13, 19}));
}

// Telemetry pins: beyond the stabilization round, these fix the exact
// communication-cost counters (connections, proposals) of one seeded trial.
// They fail on any change to the per-round draw schedule even when the
// stabilization round happens to survive it.
struct GoldenTrial {
  Round rounds;
  std::uint64_t connections;
  std::uint64_t proposals;

  bool operator==(const GoldenTrial&) const = default;
};

std::ostream& operator<<(std::ostream& os, const GoldenTrial& t) {
  return os << "{" << t.rounds << ", " << t.connections << ", "
            << t.proposals << "}";
}

GoldenTrial run_golden_trial(Protocol& proto, const Graph& g,
                             EngineConfig cfg) {
  StaticGraphProvider topo(g);
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1u << 22);
  EXPECT_TRUE(r.converged);
  return {r.rounds, r.connections, r.proposals};
}

TEST(GoldenTelemetry, BlindGossipStarLine2x5) {
  const Graph g = make_star_line(2, 5);
  BlindGossip proto(BlindGossip::shuffled_uids(g.node_count(), 301));
  EngineConfig cfg;
  cfg.seed = 301;
  EXPECT_EQ(run_golden_trial(proto, g, cfg), (GoldenTrial{35, 49, 201}));
}

TEST(GoldenTelemetry, BitConvergenceClique8) {
  const Graph g = make_clique(8);
  BitConvergenceConfig c;
  c.network_size_bound = g.node_count();
  c.max_degree_bound = g.max_degree();
  BitConvergence proto(BlindGossip::shuffled_uids(g.node_count(), 302), c);
  EngineConfig cfg;
  cfg.tag_bits = proto.tag_bit_count();
  cfg.seed = 302;
  EXPECT_EQ(run_golden_trial(proto, g, cfg), (GoldenTrial{37, 87, 138}));
}

TEST(GoldenTelemetry, AsyncBitConvergenceCycle8StaggeredActivation) {
  const Graph g = make_cycle(8);
  AsyncBitConvergenceConfig c;
  c.network_size_bound = g.node_count();
  c.max_degree_bound = g.max_degree();
  AsyncBitConvergence proto(BlindGossip::shuffled_uids(g.node_count(), 303),
                            c);
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 303;
  cfg.activation_rounds = {1, 5, 2, 7, 3, 1, 6, 4};
  EXPECT_EQ(run_golden_trial(proto, g, cfg), (GoldenTrial{93, 13, 13}));
}

TEST(GoldenTelemetry, PpushStarLine2x5) {
  const Graph g = make_star_line(2, 5);
  Ppush proto({0});
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 304;
  EXPECT_EQ(run_golden_trial(proto, g, cfg), (GoldenTrial{6, 11, 11}));
}

// Fault-era pins: failure injection and fault plans join the pinned
// surface. dropped() (i.i.d. failures + fault drops), crashes() and
// recoveries() fix the fault-stream draw schedule alongside the
// stabilization round — a change to fault stream derivation or the pinned
// round_start order fails here even if the election outcome survives it.
struct GoldenFaultTrial {
  Round rounds;
  std::uint64_t connections;
  std::uint64_t dropped;
  std::uint64_t crashes;
  std::uint64_t recoveries;

  bool operator==(const GoldenFaultTrial&) const = default;
};

std::ostream& operator<<(std::ostream& os, const GoldenFaultTrial& t) {
  return os << "{" << t.rounds << ", " << t.connections << ", " << t.dropped
            << ", " << t.crashes << ", " << t.recoveries << "}";
}

GoldenFaultTrial run_golden_fault_trial(Protocol& proto, const Graph& g,
                                        EngineConfig cfg) {
  StaticGraphProvider topo(g);
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1u << 22);
  EXPECT_TRUE(r.converged);
  const Telemetry& t = engine.telemetry();
  return {r.rounds, t.connections(), t.dropped(), t.crashes(),
          t.recoveries()};
}

TEST(GoldenTelemetry, BlindGossipClique8FailureInjection) {
  const Graph g = make_clique(8);
  BlindGossip proto(BlindGossip::shuffled_uids(g.node_count(), 305));
  EngineConfig cfg;
  cfg.seed = 305;
  cfg.connection_failure_prob = 0.2;
  EXPECT_EQ(run_golden_fault_trial(proto, g, cfg),
            (GoldenFaultTrial{13, 23, 8, 0, 0}));
}

TEST(GoldenTelemetry, StableLeaderClique10Churn) {
  const Graph g = make_clique(10);
  StableLeader proto(BlindGossip::shuffled_uids(g.node_count(), 306), 16);
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 306;
  cfg.faults.crash_prob = 0.05;
  cfg.faults.recovery_prob = 0.5;
  cfg.faults.min_alive = 4;
  cfg.faults.seed = 306;
  EXPECT_EQ(run_golden_fault_trial(proto, g, cfg),
            (GoldenFaultTrial{21, 39, 0, 8, 8}));
}

TEST(GoldenTelemetry, BlindGossipStarLine2x4BurstAndDegradation) {
  const Graph g = make_star_line(2, 4);
  BlindGossip proto(BlindGossip::shuffled_uids(g.node_count(), 307));
  EngineConfig cfg;
  cfg.seed = 307;
  cfg.connection_failure_prob = 0.1;  // i.i.d. and fault drops both count
  cfg.faults.burst = GilbertElliott{0.1, 0.3, 0.0, 1.0};
  cfg.faults.edge_degradation = 0.3;
  cfg.faults.seed = 307;
  EXPECT_EQ(run_golden_fault_trial(proto, g, cfg),
            (GoldenFaultTrial{86, 121, 70, 0, 0}));
}

}  // namespace
}  // namespace mtm
