// Scheduler API split (sim/scheduler.hpp): SyncScheduler parity and the
// SchedulerSpec surface.
//
// The split's contract is that the sync path did not move: a scheduler
// built through make_scheduler() with the default (sync) spec IS the
// pre-split Engine, so every golden, trace, and fingerprint is reproduced
// byte-identically by construction. These tests pin that — plus the
// deprecation fold of the old intra_round_threads/engine_threads plumbing
// and the CLI contradiction rejections — so the one-way-to-configure
// invariant cannot silently regress.
#include <gtest/gtest.h>

#include <initializer_list>
#include <stdexcept>
#include <vector>

#include "core/cli.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/classical.hpp"
#include "sim/engine.hpp"
#include "sim/event_scheduler.hpp"
#include "sim/fault_cli.hpp"
#include "sim/runner.hpp"
#include "sim/scheduler.hpp"
#include "testing/differential.hpp"

namespace mtm {
namespace {

CliArgs make_args(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

/// A deliberately busy configuration: staggered starts, failure injection,
/// and node churn, so the parity check covers every draw site.
EngineConfig busy_config(std::uint64_t seed) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.record_rounds = true;
  cfg.connection_failure_prob = 0.2;
  cfg.activation_rounds = {1, 1, 2, 3, 1, 5, 1, 2, 1, 4, 1, 1};
  cfg.faults.crash_prob = 0.05;
  cfg.faults.recovery_prob = 0.5;
  cfg.faults.seed = derive_seed(seed, {0xfa});
  return cfg;
}

/// Telemetry + protocol-state fingerprint after `rounds` rounds.
std::uint64_t run_fingerprint(Scheduler& scheduler, Round rounds) {
  scheduler.run_rounds(rounds);
  const Telemetry& t = scheduler.telemetry();
  std::uint64_t h = mix64(t.proposals());
  h = mix64(h ^ t.connections());
  h = mix64(h ^ t.failed_connections());
  h = mix64(h ^ t.fault_dropped());
  h = mix64(h ^ t.crashes());
  h = mix64(h ^ t.recoveries());
  h = mix64(h ^ t.payload_uids());
  h = mix64(h ^ testing::protocol_state_hash(scheduler.protocol().unwrap(),
                                             scheduler.node_count()));
  return h;
}

TEST(SchedulerParity, MakeSchedulerSyncIsEngineByteForByte) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const Graph g = make_star_line(3, 3);
    const EngineConfig cfg = busy_config(seed);

    StaticGraphProvider topo_a(g);
    BlindGossip proto_a(BlindGossip::shuffled_uids(g.node_count(), seed));
    Engine engine(topo_a, proto_a, cfg);

    StaticGraphProvider topo_b(g);
    BlindGossip proto_b(BlindGossip::shuffled_uids(g.node_count(), seed));
    const auto scheduler = make_scheduler(topo_b, proto_b, cfg);

    EXPECT_EQ(run_fingerprint(engine, 64), run_fingerprint(*scheduler, 64));
    EXPECT_EQ(engine.telemetry().per_round().back().connections,
              scheduler->telemetry().per_round().back().connections);
  }
}

TEST(SchedulerParity, ClassicalModeParity) {
  const Graph g = make_clique(10);
  EngineConfig cfg;
  cfg.seed = 77;
  cfg.classical_mode = true;
  cfg.connection_failure_prob = 0.3;

  StaticGraphProvider topo_a(g);
  ClassicalGossip proto_a(BlindGossip::shuffled_uids(g.node_count(), 77));
  Engine engine(topo_a, proto_a, cfg);

  StaticGraphProvider topo_b(g);
  ClassicalGossip proto_b(BlindGossip::shuffled_uids(g.node_count(), 77));
  const auto scheduler = make_scheduler(topo_b, proto_b, cfg);

  EXPECT_EQ(run_fingerprint(engine, 32), run_fingerprint(*scheduler, 32));
}

TEST(SchedulerSpec, LegacyThreadsFoldIntoSpec) {
  EngineConfig cfg;
  cfg.intra_round_threads = 4;
  const EngineConfig normalized = normalize_scheduler_spec(cfg);
  EXPECT_EQ(normalized.scheduler.threads, 4u);
  EXPECT_EQ(normalized.intra_round_threads, 4u);
}

TEST(SchedulerSpec, SpecThreadsMirrorIntoLegacyField) {
  EngineConfig cfg;
  cfg.scheduler.threads = 3;
  const EngineConfig normalized = normalize_scheduler_spec(cfg);
  EXPECT_EQ(normalized.scheduler.threads, 3u);
  EXPECT_EQ(normalized.intra_round_threads, 3u);
}

TEST(SchedulerSpec, ConflictingThreadKnobsRejected) {
  EngineConfig cfg;
  cfg.intra_round_threads = 4;
  cfg.scheduler.threads = 2;
  EXPECT_THROW(normalize_scheduler_spec(cfg), std::invalid_argument);
  // Agreeing values are not a conflict.
  cfg.scheduler.threads = 4;
  EXPECT_EQ(normalize_scheduler_spec(cfg).scheduler.threads, 4u);
}

TEST(SchedulerSpec, ValidateRejectsContradictorySpecs) {
  SchedulerSpec sync;
  sync.latency_mean = 1.0;
  EXPECT_THROW(validate(sync), std::invalid_argument);  // latency on sync

  SchedulerSpec drifty;
  drifty.clock_drift = 0.1;
  EXPECT_THROW(validate(drifty), std::invalid_argument);  // drift on sync

  SchedulerSpec event;
  event.kind = SchedulerKind::kEvent;
  event.threads = 4;
  EXPECT_THROW(validate(event), std::invalid_argument);  // parallel event

  SchedulerSpec bad_drift;
  bad_drift.kind = SchedulerKind::kEvent;
  bad_drift.clock_drift = 0.5;
  EXPECT_THROW(validate(bad_drift), std::invalid_argument);  // drift >= 0.5
}

TEST(SchedulerSpec, EngineRequiresSyncKindEventSchedulerRequiresEvent) {
  const Graph g = make_clique(4);
  EngineConfig cfg;
  cfg.scheduler.kind = SchedulerKind::kEvent;
  {
    StaticGraphProvider topo(g);
    BlindGossip proto(BlindGossip::shuffled_uids(4, 1));
    EXPECT_THROW(Engine(topo, proto, cfg), ContractError);
  }
  cfg.scheduler.kind = SchedulerKind::kSync;
  {
    StaticGraphProvider topo(g);
    BlindGossip proto(BlindGossip::shuffled_uids(4, 1));
    EXPECT_THROW(EventScheduler(topo, proto, cfg), ContractError);
  }
}

TEST(SchedulerSpec, TrialControlsEngineThreadsAliasMatchesSpec) {
  const Graph g = make_clique(8);
  LeaderExperiment legacy;
  legacy.algo = LeaderAlgo::kBlindGossip;
  legacy.node_count = g.node_count();
  legacy.topology = static_topology(g);
  legacy.controls.max_rounds = 1u << 16;
  legacy.controls.trials = 2;
  legacy.controls.seed = 5;

  LeaderExperiment spec = legacy;
  legacy.controls.engine_threads = 2;   // deprecated spelling
  spec.controls.scheduler.threads = 2;  // the one true knob

  const auto a = run_leader_experiment(legacy);
  const auto b = run_leader_experiment(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rounds, b[i].rounds);
    EXPECT_EQ(a[i].connections, b[i].connections);
  }
}

TEST(SchedulerCli, ParsesEventFlags) {
  const SchedulerSpec spec = parse_scheduler_flags(
      make_args({"--scheduler=event", "--latency-dist=exponential",
                 "--latency-mean=0.5", "--clock-drift=0.1"}));
  EXPECT_EQ(spec.kind, SchedulerKind::kEvent);
  EXPECT_EQ(spec.latency_dist, LatencyDist::kExponential);
  EXPECT_DOUBLE_EQ(spec.latency_mean, 0.5);
  EXPECT_DOUBLE_EQ(spec.clock_drift, 0.1);
  EXPECT_EQ(spec.threads, 1u);
}

TEST(SchedulerCli, DefaultIsSyncAndEngineThreadsStillWorks) {
  EXPECT_EQ(parse_scheduler_flags(make_args({})).kind, SchedulerKind::kSync);
  EXPECT_EQ(parse_scheduler_flags(make_args({"--engine-threads=4"})).threads,
            4u);
  EXPECT_EQ(parse_scheduler_flags(make_args({"--scheduler-threads=4"})).threads,
            4u);
}

TEST(SchedulerCli, ContradictionsRejected) {
  // Two spellings of the same knob.
  EXPECT_THROW(parse_scheduler_flags(make_args(
                   {"--engine-threads=2", "--scheduler-threads=2"})),
               std::invalid_argument);
  // Event-only flags without --scheduler=event.
  EXPECT_THROW(parse_scheduler_flags(make_args({"--latency-mean=0.5"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_flags(make_args({"--clock-drift=0.1"})),
               std::invalid_argument);
  // A distribution that would never be sampled.
  EXPECT_THROW(parse_scheduler_flags(make_args(
                   {"--scheduler=event", "--latency-dist=uniform"})),
               std::invalid_argument);
  // Parallel event scheduling.
  EXPECT_THROW(parse_scheduler_flags(make_args(
                   {"--scheduler=event", "--scheduler-threads=4"})),
               std::invalid_argument);
  // Unknown spellings.
  EXPECT_THROW(parse_scheduler_flags(make_args({"--scheduler=fancy"})),
               std::invalid_argument);
}

TEST(SchedulerCli, KindAndDistRoundTrip) {
  EXPECT_EQ(parse_scheduler_kind(to_string(SchedulerKind::kSync)),
            SchedulerKind::kSync);
  EXPECT_EQ(parse_scheduler_kind(to_string(SchedulerKind::kEvent)),
            SchedulerKind::kEvent);
  for (const LatencyDist dist :
       {LatencyDist::kConstant, LatencyDist::kUniform,
        LatencyDist::kExponential}) {
    EXPECT_EQ(parse_latency_dist(to_string(dist)), dist);
  }
  EXPECT_THROW(parse_scheduler_kind("async"), std::invalid_argument);
  EXPECT_THROW(parse_latency_dist("gauss"), std::invalid_argument);
}

}  // namespace
}  // namespace mtm
