#include "sim/adversary.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/assert.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(Adversary, PrefixOrderIsConnectedBfs) {
  ConfinementAdversaryProvider provider(
      make_star_line(3, 3), 1, 1, [](NodeId) { return false; }, 1);
  const auto& order = provider.prefix_order();
  ASSERT_EQ(order.size(), 12u);
  // Every prefix of a BFS order is connected in the base graph.
  const Graph base = make_star_line(3, 3);
  for (std::size_t len = 1; len <= order.size(); ++len) {
    std::set<NodeId> prefix(order.begin(),
                            order.begin() + static_cast<std::ptrdiff_t>(len));
    // Check connectivity of the induced prefix via BFS within the set.
    std::vector<NodeId> stack{order[0]};
    std::set<NodeId> seen{order[0]};
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : base.neighbors(u)) {
        if (prefix.count(v) && !seen.count(v)) {
          seen.insert(v);
          stack.push_back(v);
        }
      }
    }
    EXPECT_EQ(seen.size(), len) << "prefix of length " << len;
  }
}

TEST(Adversary, MarkedNodesOccupyPrefixPositions) {
  const Graph base = make_star_line(4, 3);
  std::vector<bool> marked(base.node_count(), false);
  for (NodeId u = 0; u < 5; ++u) marked[u] = true;  // nodes 0..4 marked
  ConfinementAdversaryProvider provider(
      base, 1, 7, [&marked](NodeId u) { return marked[u]; }, 1);
  const Graph& g = provider.graph_at(1);
  // The marked nodes are relabeled onto the first 5 BFS-order positions,
  // so their boundary in g equals the boundary of a connected BFS prefix of
  // the base graph — at most Δ nodes (the just-exposed frontier of one
  // center), far below the ~|marked|·Δ of a random placement.
  std::uint32_t boundary = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (marked[v]) continue;
    for (NodeId u : g.neighbors(v)) {
      if (marked[u]) {
        ++boundary;
        break;
      }
    }
  }
  EXPECT_LE(boundary, base.max_degree());
}

TEST(Adversary, IsomorphicToBaseEveryWindow) {
  const Graph base = make_star_line(3, 4);
  ConfinementAdversaryProvider provider(
      base, 2, 3, [](NodeId u) { return u % 3 == 0; });
  for (Round r = 1; r <= 20; ++r) {
    const Graph& g = provider.graph_at(r);
    EXPECT_EQ(g.edge_count(), base.edge_count());
    EXPECT_EQ(g.max_degree(), base.max_degree());
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Adversary, HonorsTauContract) {
  // The oracle may change every round, but the topology must be constant
  // within each τ-window (the provider snapshots the oracle at window
  // boundaries).
  const Graph base = make_cycle(10);
  NodeId flip = 0;
  ConfinementAdversaryProvider provider(
      base, 4, 5, [&flip](NodeId u) { return u == flip; });
  for (Round window = 0; window < 4; ++window) {
    flip = static_cast<NodeId>(window % 10);
    const auto first = provider.graph_at(window * 4 + 1).edges();
    flip = static_cast<NodeId>((window + 5) % 10);  // oracle changes mid-window
    for (Round offset = 2; offset <= 4; ++offset) {
      EXPECT_EQ(provider.graph_at(window * 4 + offset).edges(), first);
    }
  }
}

TEST(Adversary, BlindGossipConvergesUnderAdaptiveConfinement) {
  // Correctness under the adaptive adversary: blind gossip must still
  // stabilize (the τ-bounds are upper bounds for EVERY legal dynamic graph,
  // adaptive ones included). Note the empirical finding recorded in
  // EXPERIMENTS.md (E4b): even adaptive confinement does not realize the
  // Δ^{1/τ̂} slowdown on the star-line — relabeling of any kind destroys the
  // distance structure that makes the static graph slow, consistent with
  // the paper's open question on whether the mobility cost is fundamental.
  const Graph base = make_star_line(4, 8);  // n = 36
  const NodeId n = base.node_count();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    BlindGossip proto(BlindGossip::shuffled_uids(n, seed));
    ConfinementAdversaryProvider topo(
        base, 1, seed,
        [&proto](NodeId u) { return proto.min_seen(u) == 0; });
    EngineConfig cfg;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    const RunResult r = run_until_stabilized(engine, Round{1} << 24);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    // And it stays within the Theorem VI.1 budget shape: well below the
    // (1/α)Δ²log²n bound (~4.4M here) by orders of magnitude.
    EXPECT_LT(r.rounds, 100000u);
  }
}

TEST(Adversary, OracleSnapshotDeterminism) {
  // Two identically-seeded adversarial runs produce identical executions
  // even though the provider consults live protocol state.
  const Graph base = make_star_line(3, 4);
  const NodeId n = base.node_count();
  auto run = [&](std::uint64_t seed) {
    BlindGossip proto(BlindGossip::shuffled_uids(n, seed));
    ConfinementAdversaryProvider topo(
        base, 2, seed,
        [&proto](NodeId u) { return proto.min_seen(u) == 0; });
    EngineConfig cfg;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, Round{1} << 24).rounds;
  };
  EXPECT_EQ(run(9), run(9));
}

TEST(Adversary, ValidatesConfig) {
  EXPECT_THROW(ConfinementAdversaryProvider(make_path(4), 0, 1,
                                            [](NodeId) { return false; }),
               ContractError);
  EXPECT_THROW(ConfinementAdversaryProvider(make_path(4), 1, 1, nullptr),
               ContractError);
  EXPECT_THROW(ConfinementAdversaryProvider(
                   make_path(4), 1, 1, [](NodeId) { return false; }, 9),
               ContractError);
  EXPECT_THROW(ConfinementAdversaryProvider(Graph::empty(3), 1, 1,
                                            [](NodeId) { return false; }),
               ContractError);
}

}  // namespace
}  // namespace mtm
