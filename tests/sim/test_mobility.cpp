#include "sim/mobility.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/connectivity.hpp"

namespace mtm {
namespace {

MobilityConfig small_config() {
  MobilityConfig cfg;
  cfg.node_count = 30;
  cfg.radius = 0.25;
  cfg.speed = 0.05;
  cfg.tau = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(Mobility, AlwaysConnected) {
  MobilityGraphProvider provider(small_config());
  for (Round r = 1; r <= 40; ++r) {
    EXPECT_TRUE(is_connected(provider.graph_at(r))) << "round " << r;
  }
}

TEST(Mobility, RespectsTauContract) {
  MobilityGraphProvider provider(small_config());
  for (Round window = 0; window < 10; ++window) {
    const auto first = provider.graph_at(window * 2 + 1).edges();
    EXPECT_EQ(provider.graph_at(window * 2 + 2).edges(), first);
  }
}

TEST(Mobility, TopologyEventuallyChanges) {
  MobilityGraphProvider provider(small_config());
  const auto initial = provider.graph_at(1).edges();
  bool changed = false;
  for (Round r = 3; r <= 60 && !changed; r += 2) {
    changed = provider.graph_at(r).edges() != initial;
  }
  EXPECT_TRUE(changed);
}

TEST(Mobility, DeterministicFromSeed) {
  MobilityGraphProvider a(small_config());
  MobilityGraphProvider b(small_config());
  for (Round r = 1; r <= 20; ++r) {
    EXPECT_EQ(a.graph_at(r).edges(), b.graph_at(r).edges());
  }
}

TEST(Mobility, PositionsStayInUnitSquare) {
  MobilityGraphProvider provider(small_config());
  (void)provider.graph_at(50);
  for (double x : provider.xs()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  for (double y : provider.ys()) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(Mobility, SparseRadiusTriggersRepair) {
  MobilityConfig cfg = small_config();
  cfg.node_count = 20;
  cfg.radius = 0.02;  // almost surely disconnected disk graph
  MobilityGraphProvider provider(cfg);
  EXPECT_TRUE(is_connected(provider.graph_at(1)));
  EXPECT_GT(provider.repair_edges(), 0u);
}

TEST(Mobility, RejectsNonMonotonicRounds) {
  MobilityGraphProvider provider(small_config());
  (void)provider.graph_at(10);
  EXPECT_THROW(provider.graph_at(1), ContractError);
}

TEST(Mobility, ValidatesConfig) {
  MobilityConfig bad = small_config();
  bad.node_count = 1;
  EXPECT_THROW(MobilityGraphProvider{bad}, ContractError);
  bad = small_config();
  bad.radius = 0.0;
  EXPECT_THROW(MobilityGraphProvider{bad}, ContractError);
  bad = small_config();
  bad.tau = 0;
  EXPECT_THROW(MobilityGraphProvider{bad}, ContractError);
}

}  // namespace
}  // namespace mtm
