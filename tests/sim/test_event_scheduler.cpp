// EventScheduler (sim/event_scheduler.hpp): determinism, asynchronous
// semantics, and the zero-perturbation observability contract.
//
// The event scheduler's reproducibility promise mirrors the sync engine's:
// same seed => same event order => same results, on every platform. Two
// fingerprints are pinned as literals below; a failure means the event
// queue ordering, the latency/drift hashing, or a per-node stream schedule
// changed — which invalidates every recorded E22 measurement. Regenerate
// only for an INTENTIONAL model change.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace_sink.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/classical.hpp"
#include "sim/event_scheduler.hpp"
#include "sim/invariants.hpp"
#include "sim/runner.hpp"
#include "sim/scheduler.hpp"
#include "testing/differential.hpp"

namespace mtm {
namespace {

EngineConfig event_config(std::uint64_t seed, double latency_mean,
                          double clock_drift,
                          LatencyDist dist = LatencyDist::kConstant) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.record_rounds = true;
  cfg.scheduler.kind = SchedulerKind::kEvent;
  cfg.scheduler.latency_dist = dist;
  cfg.scheduler.latency_mean = latency_mean;
  cfg.scheduler.clock_drift = clock_drift;
  return cfg;
}

/// Full observable fingerprint of an execution: telemetry counters, event
/// accounting, and protocol state, folded order-sensitively.
std::uint64_t fingerprint(const EventScheduler& scheduler) {
  const Telemetry& t = scheduler.telemetry();
  std::uint64_t h = mix64(t.proposals());
  h = mix64(h ^ t.connections());
  h = mix64(h ^ t.failed_connections());
  h = mix64(h ^ t.fault_dropped());
  h = mix64(h ^ t.crashes());
  h = mix64(h ^ t.recoveries());
  h = mix64(h ^ t.payload_uids());
  h = mix64(h ^ t.wasted_rounds());
  h = mix64(h ^ scheduler.events_dispatched());
  h = mix64(h ^ testing::protocol_state_hash(scheduler.protocol().unwrap(),
                                             scheduler.node_count()));
  return h;
}

/// Runs BlindGossip on `g` under `cfg` for `rounds` windows.
std::uint64_t run_case(const Graph& g, EngineConfig cfg, Round rounds) {
  StaticGraphProvider topo(g);
  BlindGossip proto(BlindGossip::shuffled_uids(g.node_count(), cfg.seed));
  EventScheduler scheduler(topo, proto, cfg);
  scheduler.run_rounds(rounds);
  return fingerprint(scheduler);
}

TEST(EventScheduler, SameSeedSameExecution) {
  const Graph g = make_star_line(3, 3);
  const EngineConfig cfg =
      event_config(42, 0.75, 0.1, LatencyDist::kExponential);
  EXPECT_EQ(run_case(g, cfg, 48), run_case(g, cfg, 48));
}

TEST(EventScheduler, DifferentSeedsDiverge) {
  const Graph g = make_clique(10);
  EXPECT_NE(run_case(g, event_config(1, 0.5, 0.1), 32),
            run_case(g, event_config(2, 0.5, 0.1), 32));
}

// Pinned literals: regenerate ONLY for an intentional model change (see the
// file comment). The two points cover both latency families and both the
// drift-free and drifted clocks.
TEST(EventScheduler, PinnedFingerprintConstantLatency) {
  EXPECT_EQ(run_case(make_clique(12), event_config(2024, 0.5, 0.0), 40),
            0x47d50269ca8d93f2ULL);
}

TEST(EventScheduler, PinnedFingerprintExponentialLatencyWithDrift) {
  EXPECT_EQ(run_case(make_star_line(3, 4),
                     event_config(7, 1.0, 0.2, LatencyDist::kExponential), 64),
            0x16ff58d012f87565ULL);
}

TEST(EventScheduler, DriftStretchesPeriods) {
  const Graph g = make_clique(8);
  StaticGraphProvider topo(g);
  BlindGossip proto(BlindGossip::shuffled_uids(8, 3));
  EventScheduler drifted(topo, proto, event_config(3, 0.0, 0.25));
  bool any_stretched = false;
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_GE(drifted.period_ticks(u),
              EventScheduler::kTicksPerRound * 3 / 4);
    EXPECT_LE(drifted.period_ticks(u),
              EventScheduler::kTicksPerRound * 5 / 4);
    any_stretched =
        any_stretched || drifted.period_ticks(u) != EventScheduler::kTicksPerRound;
  }
  EXPECT_TRUE(any_stretched);

  StaticGraphProvider topo_b(g);
  BlindGossip proto_b(BlindGossip::shuffled_uids(8, 3));
  EventScheduler steady(topo_b, proto_b, event_config(3, 0.0, 0.0));
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_EQ(steady.period_ticks(u), EventScheduler::kTicksPerRound);
  }
}

TEST(EventScheduler, StabilizesAndElectsTrueMinimum) {
  const Graph g = make_clique(10);
  StaticGraphProvider topo(g);
  const auto uids = BlindGossip::shuffled_uids(10, 9);
  BlindGossip proto(uids);
  EventScheduler scheduler(topo, proto, event_config(9, 0.5, 0.1));
  const RunResult result = run_until_stabilized(scheduler, 1u << 14);
  ASSERT_TRUE(result.converged);
  Uid expected = uids[0];
  for (const Uid uid : uids) expected = std::min(expected, uid);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(proto.leader_of(u), expected);
}

TEST(EventScheduler, EventAccountingIsCoherent) {
  const Graph g = make_cycle(9);
  StaticGraphProvider topo(g);
  BlindGossip proto(BlindGossip::shuffled_uids(9, 5));
  EventScheduler scheduler(topo, proto, event_config(5, 1.0, 0.05));
  scheduler.run_rounds(16);
  EXPECT_GT(scheduler.events_dispatched(), 0u);
  EXPECT_GE(scheduler.events_enqueued(),
            scheduler.events_dispatched());
  // Undelivered in-flight events (future node rounds at minimum) remain.
  EXPECT_GT(scheduler.queue_depth(), 0u);
  EXPECT_EQ(scheduler.rounds_executed(), 16u);
  EXPECT_EQ(scheduler.telemetry().per_round().size(), 16u);
}

TEST(EventScheduler, ZeroPerturbationObservers) {
  const Graph g = make_star_line(3, 3);
  const EngineConfig cfg = event_config(11, 0.5, 0.1);
  const std::uint64_t bare = run_case(g, cfg, 32);

  StaticGraphProvider topo(g);
  BlindGossip proto(BlindGossip::shuffled_uids(g.node_count(), cfg.seed));
  EventScheduler scheduler(topo, proto, cfg);
  obs::RingTraceSink trace(64);
  obs::PhaseProfile profile;
  InvariantMonitor monitor(InvariantConfig{false, 1u << 12});
  scheduler.set_trace_sink(&trace);
  scheduler.set_phase_profile(&profile);
  scheduler.set_invariant_monitor(&monitor);
  scheduler.run_rounds(32);
  EXPECT_EQ(fingerprint(scheduler), bare);
  EXPECT_EQ(monitor.report().violations(), 0u);
}

TEST(EventScheduler, FaultPlanAppliesAtWindowStarts) {
  EngineConfig cfg = event_config(21, 0.5, 0.1);
  cfg.faults.crash_prob = 0.1;
  cfg.faults.recovery_prob = 0.5;
  cfg.faults.seed = derive_seed(21, {0xfa});
  const Graph g = make_clique(12);
  StaticGraphProvider topo(g);
  BlindGossip proto(BlindGossip::shuffled_uids(12, 21));
  EventScheduler scheduler(topo, proto, cfg);
  scheduler.run_rounds(64);
  EXPECT_GT(scheduler.telemetry().crashes(), 0u);
  EXPECT_GT(scheduler.telemetry().recoveries(), 0u);
  ASSERT_NE(scheduler.fault_plan(), nullptr);
}

TEST(EventScheduler, ClassicalModeRunsUnderEvents) {
  EngineConfig cfg = event_config(31, 0.25, 0.05);
  cfg.classical_mode = true;
  const Graph g = make_clique(8);
  StaticGraphProvider topo(g);
  ClassicalGossip proto(BlindGossip::shuffled_uids(8, 31));
  EventScheduler scheduler(topo, proto, cfg);
  const RunResult result = run_until_stabilized(scheduler, 1u << 12);
  EXPECT_TRUE(result.converged);
}

TEST(EventScheduler, MakeSchedulerDispatchesOnKind) {
  const Graph g = make_clique(6);
  StaticGraphProvider topo(g);
  BlindGossip proto(BlindGossip::shuffled_uids(6, 1));
  const auto scheduler =
      make_scheduler(topo, proto, event_config(1, 0.0, 0.0));
  EXPECT_NE(dynamic_cast<EventScheduler*>(scheduler.get()), nullptr);
}

}  // namespace
}  // namespace mtm
