// The shared fault/adversary CLI surface (sim/fault_cli.hpp): flag
// parsing into FaultPlanConfig / ByzantinePlanConfig, burst presets, the
// enum spellings (which double as fuzz tuple keys and must never drift),
// and the one-line contradiction rejections.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/cli.hpp"
#include "sim/fault_cli.hpp"

namespace mtm {
namespace {

CliArgs make_args(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(FaultCli, PartitionFlagsParse) {
  const CliArgs args = make_args({"--partition=periodic", "--parts=3",
                                  "--partition-start=4",
                                  "--partition-duration=6",
                                  "--partition-period=20"});
  const FaultPlanConfig faults = parse_fault_flags(args);
  EXPECT_EQ(faults.partition.mode, PartitionMode::kPeriodic);
  EXPECT_EQ(faults.partition.parts, 3u);
  EXPECT_EQ(faults.partition.start, 4u);
  EXPECT_EQ(faults.partition.duration, 6u);
  EXPECT_EQ(faults.partition.period, 20u);
  EXPECT_TRUE(faults.enabled());
  args.check_unused();
}

TEST(FaultCli, PartitionDefaults) {
  const FaultPlanConfig one_shot =
      parse_fault_flags(make_args({"--partition=one-shot"}));
  EXPECT_EQ(one_shot.partition.parts, 2u);
  EXPECT_EQ(one_shot.partition.start, 8u);
  EXPECT_EQ(one_shot.partition.duration, 8u);

  // Periodic defaults its spacing to 4x the duration.
  const FaultPlanConfig periodic = parse_fault_flags(
      make_args({"--partition=periodic", "--partition-duration=5"}));
  EXPECT_EQ(periodic.partition.period, 20u);

  const FaultPlanConfig off = parse_fault_flags(make_args({}));
  EXPECT_FALSE(off.partition.enabled());
  EXPECT_FALSE(off.enabled());
}

TEST(FaultCli, PartitionContradictionsRejectedWithOneLiners) {
  // Partition parameters without a mode are a dropped --partition flag.
  for (const char* flag : {"--parts=3", "--partition-start=4",
                           "--partition-duration=6",
                           "--partition-period=20"}) {
    EXPECT_THROW(parse_fault_flags(make_args({flag})), std::invalid_argument)
        << flag;
  }
  // A period outside periodic mode is meaningless.
  EXPECT_THROW(parse_fault_flags(make_args(
                   {"--partition=one-shot", "--partition-period=20"})),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_flags(make_args(
                   {"--partition=flapping", "--partition-period=20"})),
               std::invalid_argument);
  // Unknown mode.
  EXPECT_THROW(parse_fault_flags(make_args({"--partition=moebius"})),
               std::invalid_argument);
}

TEST(FaultCli, RecoverWithoutACrashMechanismRejected) {
  EXPECT_THROW(parse_fault_flags(make_args({"--recover=0.5"})),
               std::invalid_argument);
  // Either crash mechanism legitimizes it.
  EXPECT_EQ(parse_fault_flags(make_args({"--recover=0.5", "--crash=0.1"}))
                .recovery_prob,
            0.5);
  const FaultPlanConfig with_oracle = parse_fault_flags(
      make_args({"--recover=0.5", "--oracle=leader", "--oracle-every=8"}));
  EXPECT_EQ(with_oracle.recovery_prob, 0.5);
  EXPECT_EQ(with_oracle.targeting, CrashTargeting::kLeaderNode);
}

TEST(FaultCli, ByzFlagsParse) {
  const CliArgs args =
      make_args({"--byz=0.25", "--byz-mode=equivocate", "--byz-spoof-uid=7",
                 "--byz-tag=0"});
  const ByzantinePlanConfig byz = parse_byz_flags(args);
  EXPECT_EQ(byz.fraction, 0.25);
  EXPECT_EQ(byz.behavior, ByzBehavior::kEquivocate);
  EXPECT_EQ(byz.spoof_uid, 7u);
  EXPECT_EQ(byz.spoof_tag, 0u);
  EXPECT_TRUE(byz.enabled());
  args.check_unused();

  EXPECT_FALSE(parse_byz_flags(make_args({})).enabled());
}

TEST(FaultCli, ByzFlagsWithoutAFractionRejected) {
  for (const char* flag :
       {"--byz-mode=silent", "--byz-spoof-uid=7", "--byz-tag=0"}) {
    EXPECT_THROW(parse_byz_flags(make_args({flag})), std::invalid_argument)
        << flag;
  }
  // An explicit zero fraction is the same contradiction.
  EXPECT_THROW(
      parse_byz_flags(make_args({"--byz=0", "--byz-mode=silent"})),
      std::invalid_argument);
  // Out-of-range fractions are caught by validate().
  EXPECT_ANY_THROW(parse_byz_flags(make_args({"--byz=1.0"})));
}

TEST(FaultCli, BurstPresets) {
  EXPECT_FALSE(burst_preset(0).enabled());
  const GilbertElliott mild = burst_preset(1);
  EXPECT_EQ(mild.good_to_bad, 0.1);
  EXPECT_EQ(mild.bad_to_good, 0.3);
  const GilbertElliott harsh = burst_preset(2);
  EXPECT_EQ(harsh.loss_good, 0.05);
  const GilbertElliott lingering = burst_preset(kBurstPresetMax);
  EXPECT_EQ(lingering.good_to_bad, 0.05);
  EXPECT_EQ(lingering.bad_to_good, 0.05);
  EXPECT_EQ(lingering.loss_good, 0.02);
  EXPECT_EQ(lingering.loss_bad, 0.98);
  EXPECT_THROW(burst_preset(kBurstPresetMax + 1), std::invalid_argument);
  EXPECT_THROW(burst_preset(-1), std::invalid_argument);
}

TEST(FaultCli, EnumSpellingsRoundTrip) {
  // These strings are fuzz tuple keys and recorded artifacts; they are
  // pinned forever.
  for (PartitionMode mode :
       {PartitionMode::kNone, PartitionMode::kOneShot,
        PartitionMode::kPeriodic, PartitionMode::kFlapping}) {
    EXPECT_EQ(parse_partition_mode(to_string(mode)), mode);
  }
  EXPECT_EQ(parse_partition_mode("one-shot"), PartitionMode::kOneShot);
  for (ByzBehavior behavior :
       {ByzBehavior::kUidSpoof, ByzBehavior::kEquivocate,
        ByzBehavior::kSilentAccept, ByzBehavior::kStaleReplay,
        ByzBehavior::kMix}) {
    EXPECT_EQ(parse_byz_behavior(to_string(behavior)), behavior);
  }
  EXPECT_EQ(parse_byz_behavior("spoof"), ByzBehavior::kUidSpoof);
  EXPECT_THROW(parse_byz_behavior("gremlin"), std::invalid_argument);
}

TEST(ResilienceCli, DefaultsAreAllOff) {
  const ResilienceOptions options = parse_resilience_flags(make_args({}));
  EXPECT_TRUE(options.journal_path.empty());
  EXPECT_FALSE(options.resume);
  EXPECT_EQ(options.trial_deadline_ms, 0u);
  EXPECT_EQ(options.retries, 0u);
  EXPECT_FALSE(options.retry_censored);
}

TEST(ResilienceCli, FullFlagSetParses) {
  const CliArgs args = make_args(
      {"--resume=run.journal", "--trial-deadline-ms=500", "--retries=3",
       "--backoff-ms=10", "--retry-censored"});
  const ResilienceOptions options = parse_resilience_flags(args);
  EXPECT_EQ(options.journal_path, "run.journal");
  EXPECT_TRUE(options.resume);
  EXPECT_EQ(options.trial_deadline_ms, 500u);
  EXPECT_EQ(options.retries, 3u);
  EXPECT_EQ(options.backoff_ms, 10u);
  EXPECT_TRUE(options.retry_censored);
  args.check_unused();
}

TEST(ResilienceCli, JournalFlagStartsFresh) {
  const ResilienceOptions options =
      parse_resilience_flags(make_args({"--journal=run.journal"}));
  EXPECT_EQ(options.journal_path, "run.journal");
  EXPECT_FALSE(options.resume);
}

TEST(ResilienceCli, ContradictionsAreRejected) {
  // One file cannot be both freshly created and resumed.
  EXPECT_THROW(parse_resilience_flags(
                   make_args({"--journal=a.jsonl", "--resume=b.jsonl"})),
               std::invalid_argument);
  // Retries without a deadline would never trigger.
  EXPECT_THROW(parse_resilience_flags(make_args({"--retries=2"})),
               std::invalid_argument);
  // Backoff / retry-censored without a retry budget to shape.
  EXPECT_THROW(parse_resilience_flags(make_args({"--backoff-ms=10"})),
               std::invalid_argument);
  EXPECT_THROW(parse_resilience_flags(make_args({"--retry-censored"})),
               std::invalid_argument);
  // Empty paths are dropped flags, not journals.
  EXPECT_THROW(parse_resilience_flags(make_args({"--resume="})),
               std::invalid_argument);
  EXPECT_THROW(parse_resilience_flags(make_args({"--journal="})),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtm
