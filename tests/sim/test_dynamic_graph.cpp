#include "sim/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(StaticProvider, AlwaysSameGraph) {
  StaticGraphProvider provider(make_cycle(5));
  const Graph& g1 = provider.graph_at(1);
  const Graph& g100 = provider.graph_at(100);
  EXPECT_EQ(&g1, &g100);
  EXPECT_EQ(provider.stability(), DynamicGraphProvider::kInfiniteStability);
  EXPECT_EQ(provider.node_count(), 5u);
}

TEST(StaticProvider, RejectsDisconnected) {
  EXPECT_THROW(StaticGraphProvider(Graph::empty(3)), ContractError);
}

TEST(StaticProvider, RejectsRoundZero) {
  StaticGraphProvider provider(make_cycle(5));
  EXPECT_THROW(provider.graph_at(0), ContractError);
}

TEST(SequenceProvider, SwitchesEveryTau) {
  std::vector<Graph> graphs;
  graphs.push_back(make_path(4));
  graphs.push_back(make_cycle(4));
  SequenceGraphProvider provider(std::move(graphs), 3);
  // Rounds 1-3: path (3 edges); rounds 4-6: cycle (4 edges); round 7 wraps.
  EXPECT_EQ(provider.graph_at(1).edge_count(), 3u);
  EXPECT_EQ(provider.graph_at(3).edge_count(), 3u);
  EXPECT_EQ(provider.graph_at(4).edge_count(), 4u);
  EXPECT_EQ(provider.graph_at(6).edge_count(), 4u);
  EXPECT_EQ(provider.graph_at(7).edge_count(), 3u);
  EXPECT_EQ(provider.stability(), 3u);
}

TEST(SequenceProvider, ValidatesInputs) {
  EXPECT_THROW(SequenceGraphProvider({}, 1), ContractError);
  std::vector<Graph> mismatch;
  mismatch.push_back(make_path(3));
  mismatch.push_back(make_path(4));
  EXPECT_THROW(SequenceGraphProvider(std::move(mismatch), 1), ContractError);
}

TEST(RegeneratingProvider, StableWithinWindowFreshAcross) {
  RegeneratingGraphProvider provider(
      [](Rng& rng) { return make_random_regular(12, 4, rng); }, 5, 42);
  const auto edges_r1 = provider.graph_at(1).edges();
  EXPECT_EQ(provider.graph_at(3).edges(), edges_r1);
  EXPECT_EQ(provider.graph_at(5).edges(), edges_r1);
  const auto edges_r6 = provider.graph_at(6).edges();
  EXPECT_NE(edges_r6, edges_r1);  // fresh sample (w.h.p. for this seed)
  EXPECT_EQ(provider.node_count(), 12u);
}

TEST(RegeneratingProvider, DeterministicSchedule) {
  auto build = [] {
    return RegeneratingGraphProvider(
        [](Rng& rng) { return make_random_regular(10, 3, rng); }, 2, 7);
  };
  auto a = build();
  auto b = build();
  for (Round r = 1; r <= 10; ++r) {
    EXPECT_EQ(a.graph_at(r).edges(), b.graph_at(r).edges()) << "round " << r;
  }
}

TEST(RelabelingProvider, PreservesDegreeSequence) {
  RelabelingGraphProvider provider(make_star_line(3, 4), 2, 5);
  const Graph& base = provider.graph_at(1);
  const NodeId delta = base.max_degree();
  const std::size_t edges = base.edge_count();
  for (Round r = 1; r <= 20; ++r) {
    const Graph& g = provider.graph_at(r);
    EXPECT_EQ(g.max_degree(), delta);
    EXPECT_EQ(g.edge_count(), edges);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(RelabelingProvider, ChangesAcrossWindowsOnly) {
  RelabelingGraphProvider provider(make_path(6), 3, 11);
  const auto e1 = provider.graph_at(1).edges();
  EXPECT_EQ(provider.graph_at(2).edges(), e1);
  EXPECT_EQ(provider.graph_at(3).edges(), e1);
  const auto e4 = provider.graph_at(4).edges();
  EXPECT_NE(e4, e1);  // new permutation (w.h.p. for n=6 and this seed)
}

TEST(RelabelingProvider, TauOneChangesEveryRound) {
  RelabelingGraphProvider provider(make_cycle(8), 1, 3);
  const auto e1 = provider.graph_at(1).edges();
  const auto e2 = provider.graph_at(2).edges();
  const auto e3 = provider.graph_at(3).edges();
  EXPECT_TRUE(e1 != e2 || e2 != e3);  // at least one change in 3 rounds
}

TEST(Providers, TauStabilityContractHolds) {
  // Property: for each provider with stability tau, graph_at is constant on
  // every window [k*tau+1, (k+1)*tau].
  const Round tau = 4;
  RelabelingGraphProvider provider(make_cycle(10), tau, 17);
  for (Round window = 0; window < 5; ++window) {
    const auto first = provider.graph_at(window * tau + 1).edges();
    for (Round offset = 2; offset <= tau; ++offset) {
      EXPECT_EQ(provider.graph_at(window * tau + offset).edges(), first)
          << "window " << window << " offset " << offset;
    }
  }
}

}  // namespace
}  // namespace mtm
