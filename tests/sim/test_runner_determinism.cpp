// run_trials thread-schedule invariance: results are identical (every
// RunResult field) across thread counts for the same (seed, trials) — the
// static-index parallel_for contract in core/thread_pool.hpp plus the
// (seed, trial) → trial_seed derivation schedule in sim/runner.cpp.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

bool identical(const RunResult& a, const RunResult& b) {
  return a.rounds == b.rounds && a.converged == b.converged &&
         a.rounds_after_last_activation == b.rounds_after_last_activation &&
         a.connections == b.connections && a.proposals == b.proposals;
}

std::vector<RunResult> trials_with_threads(std::size_t threads,
                                           std::uint64_t seed) {
  TrialSpec spec;
  spec.controls.max_rounds = 1u << 20;
  spec.controls.trials = 16;
  spec.controls.seed = seed;
  spec.controls.threads = threads;
  return run_trials(spec, [](std::uint64_t trial_seed) {
    const Graph g = make_star_line(3, 4);
    StaticGraphProvider topo(g);
    BlindGossip proto(
        BlindGossip::shuffled_uids(g.node_count(), trial_seed));
    EngineConfig cfg;
    cfg.seed = trial_seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 1u << 20);
  });
}

TEST(RunnerDeterminism, TrialsAreIdenticalAcrossThreadCounts) {
  const auto t1 = trials_with_threads(1, 77);
  const auto t2 = trials_with_threads(2, 77);
  const auto t8 = trials_with_threads(8, 77);
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_TRUE(identical(t1[i], t2[i])) << "trial " << i << " (1 vs 2)";
    EXPECT_TRUE(identical(t1[i], t8[i])) << "trial " << i << " (1 vs 8)";
  }
  // And not all trials coincide — the comparison is not vacuous.
  bool any_distinct = false;
  for (std::size_t i = 1; i < t1.size(); ++i) {
    any_distinct = any_distinct || t1[i].rounds != t1[0].rounds;
  }
  EXPECT_TRUE(any_distinct);
}

TEST(RunnerDeterminism, TrialSeedScheduleIsThreadAndOrderInvariant) {
  // Pins the derive_seed(seed, {"trial", t}) schedule itself: the seed a
  // trial body receives depends only on (spec.controls.seed, trial index), never on
  // which worker ran it or in what order.
  const auto seeds_with_threads = [](std::size_t threads) {
    TrialSpec spec;
    spec.controls.max_rounds = 1;
    spec.controls.trials = 64;
    spec.controls.seed = 123;
    spec.controls.threads = threads;
    std::vector<std::uint64_t> seeds(spec.controls.trials);
    run_trials(spec, [&seeds](std::uint64_t trial_seed) {
      // Recover the trial index from the known derivation to store the
      // seed at its slot without racing.
      for (std::size_t t = 0; t < 64; ++t) {
        if (derive_seed(123, {0x747269616cULL, t}) == trial_seed) {
          seeds[t] = trial_seed;
          break;
        }
      }
      return RunResult{};
    });
    return seeds;
  };
  const auto s1 = seeds_with_threads(1);
  const auto s8 = seeds_with_threads(8);
  EXPECT_EQ(s1, s8);
  for (std::size_t t = 0; t < s1.size(); ++t) {
    EXPECT_EQ(s1[t], derive_seed(123, {0x747269616cULL, t}));
  }
}

}  // namespace
}  // namespace mtm
