// The acceptance-policy model variation point (paper Section III: uniform
// randomness is chosen "for simplicity" among several possibilities).
#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/push_pull.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

/// Star center receives from all leaves; checks who gets accepted.
class AllLeavesPropose : public Protocol {
 public:
  std::string name() const override { return "all-leaves-propose"; }
  void init(NodeId n, std::span<Rng>) override { node_count_ = n; }
  Tag advertise(NodeId, Round, Rng&) override { return 0; }
  Decision decide(NodeId u, Round, std::span<const NeighborInfo> view,
                  Rng&) override {
    if (u == 0 || view.empty()) return Decision::receive();
    return Decision::send(0);
  }
  Payload make_payload(NodeId u, NodeId, Round) override {
    Payload p;
    p.push_uid(u);
    return p;
  }
  void receive_payload(NodeId u, NodeId peer, const Payload&,
                       Round) override {
    if (u == 0) accepted_senders.push_back(peer);
  }
  bool stabilized() const override { return false; }

  NodeId node_count_ = 0;
  std::vector<NodeId> accepted_senders;
};

TEST(AcceptancePolicy, SmallestIdIsDeterministic) {
  StaticGraphProvider topo(make_star(6));
  AllLeavesPropose proto;
  EngineConfig cfg;
  cfg.acceptance = AcceptancePolicy::kSmallestId;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(10);
  ASSERT_EQ(proto.accepted_senders.size(), 10u);
  for (NodeId s : proto.accepted_senders) EXPECT_EQ(s, 1u);
}

TEST(AcceptancePolicy, LargestIdIsDeterministic) {
  StaticGraphProvider topo(make_star(6));
  AllLeavesPropose proto;
  EngineConfig cfg;
  cfg.acceptance = AcceptancePolicy::kLargestId;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(10);
  for (NodeId s : proto.accepted_senders) EXPECT_EQ(s, 5u);
}

TEST(AcceptancePolicy, UniformSpreadsAcceptances) {
  std::map<NodeId, int> counts;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    StaticGraphProvider topo(make_star(6));
    AllLeavesPropose proto;
    EngineConfig cfg;
    cfg.acceptance = AcceptancePolicy::kUniformRandom;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    engine.step();
    ASSERT_EQ(proto.accepted_senders.size(), 1u);
    ++counts[proto.accepted_senders[0]];
  }
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    EXPECT_GT(counts[leaf], 15) << "leaf " << leaf;  // ~40 expected
  }
}

class PolicyConvergence : public ::testing::TestWithParam<int> {};

TEST_P(PolicyConvergence, ProtocolsConvergeUnderEveryPolicy) {
  // The Section VI analysis leans on uniform acceptance for its
  // independence argument, but CORRECTNESS (probability-1 stabilization)
  // survives any acceptance policy: sender-side randomness alone
  // suffices to realize every needed connection eventually.
  const auto policy = static_cast<AcceptancePolicy>(GetParam());
  {
    StaticGraphProvider topo(make_star_line(3, 4));
    BlindGossip proto(BlindGossip::shuffled_uids(15, 3));
    EngineConfig cfg;
    cfg.acceptance = policy;
    cfg.seed = 3;
    Engine engine(topo, proto, cfg);
    EXPECT_TRUE(run_until_stabilized(engine, 1u << 22).converged);
  }
  {
    StaticGraphProvider topo(make_clique(12));
    PushPull proto({0});
    EngineConfig cfg;
    cfg.acceptance = policy;
    cfg.seed = 4;
    Engine engine(topo, proto, cfg);
    EXPECT_TRUE(run_until_stabilized(engine, 1u << 22).converged);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyConvergence,
    ::testing::Values(static_cast<int>(AcceptancePolicy::kUniformRandom),
                      static_cast<int>(AcceptancePolicy::kSmallestId),
                      static_cast<int>(AcceptancePolicy::kLargestId)));

TEST(AcceptancePolicy, UniformAcceptanceFrequencyPassesChiSquared) {
  // Quantitative version of UniformSpreadsAcceptances: with k leaves all
  // proposing to the star center, kUniformRandom must accept each leaf with
  // frequency 1/k. Pearson chi-squared over seeded one-round trials against
  // the uniform expectation; critical values at p = 0.001, so a false alarm
  // is ~1-in-1000 per k even though every trial is deterministic in seed.
  struct Case {
    NodeId leaves;
    double critical;  // chi2 inverse CDF at 0.999, df = leaves - 1
  };
  const Case cases[] = {{2, 10.83}, {3, 13.82}, {5, 18.47}, {8, 24.32}};
  const int kTrials = 4000;
  for (const Case& c : cases) {
    std::map<NodeId, int> counts;
    for (int trial = 0; trial < kTrials; ++trial) {
      StaticGraphProvider topo(make_star(c.leaves + 1));
      AllLeavesPropose proto;
      EngineConfig cfg;
      cfg.acceptance = AcceptancePolicy::kUniformRandom;
      cfg.seed = derive_seed(0xc415, {c.leaves, std::uint64_t(trial)});
      Engine engine(topo, proto, cfg);
      engine.step();
      ASSERT_EQ(proto.accepted_senders.size(), 1u);
      ++counts[proto.accepted_senders[0]];
    }
    const double expected = static_cast<double>(kTrials) / c.leaves;
    double chi2 = 0.0;
    for (NodeId leaf = 1; leaf <= c.leaves; ++leaf) {
      const double deviation = counts[leaf] - expected;
      chi2 += deviation * deviation / expected;
    }
    EXPECT_LT(chi2, c.critical) << "k = " << c.leaves << " leaves";
  }
}

TEST(AcceptancePolicy, GoodEdgeFrequencyMeetsSectionSixBound) {
  // Definition VI.2 / the 1/(4Δ²) bound: under uniform acceptance, a fixed
  // ordered edge (u, v) connects with probability >= 1/(4Δ²). Measure the
  // bottleneck center-center edge of a star-line over many one-round
  // trials of blind gossip.
  const Graph g = make_star_line(2, 6);  // centers 0 and 7, Δ = 7
  const NodeId u = star_line_center(0, 6);
  const NodeId v = star_line_center(1, 6);
  const double delta = g.max_degree();
  int connected = 0;
  const int kTrials = 40000;
  /// Observes connections via payload receipts, delegating to blind gossip.
  class Probe : public Protocol {
   public:
    explicit Probe(BlindGossip& inner) : inner_(inner) {}
    std::string name() const override { return "probe"; }
    void init(NodeId n, std::span<Rng> rngs) override { inner_.init(n, rngs); }
    Tag advertise(NodeId a, Round r, Rng& rng) override {
      return inner_.advertise(a, r, rng);
    }
    Decision decide(NodeId a, Round r, std::span<const NeighborInfo> view,
                    Rng& rng) override {
      return inner_.decide(a, r, view, rng);
    }
    Payload make_payload(NodeId a, NodeId p, Round r) override {
      return inner_.make_payload(a, p, r);
    }
    void receive_payload(NodeId at, NodeId peer, const Payload& p,
                         Round r) override {
      inner_.receive_payload(at, peer, p, r);
      pairs.emplace_back(at, peer);
    }
    bool stabilized() const override { return inner_.stabilized(); }
    std::vector<std::pair<NodeId, NodeId>> pairs;

   private:
    BlindGossip& inner_;
  };
  for (int trial = 0; trial < kTrials; ++trial) {
    StaticGraphProvider topo(g);
    BlindGossip inner(BlindGossip::shuffled_uids(
        g.node_count(), static_cast<std::uint64_t>(trial)));
    Probe proto(inner);
    EngineConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(trial) + 1;
    Engine engine(topo, proto, cfg);
    engine.step();
    for (const auto& [at, peer] : proto.pairs) {
      if ((at == u && peer == v) || (at == v && peer == u)) {
        ++connected;
        break;
      }
    }
  }
  const double freq = static_cast<double>(connected) / kTrials;
  // The connection event is a superset of the ordered good events in both
  // directions; the bound for one ordered edge is 1/(4Δ²).
  EXPECT_GE(freq, 1.0 / (4.0 * delta * delta));
}

}  // namespace
}  // namespace mtm
