// Partition schedules (sim/faults.hpp): window timing for all three modes,
// per-window label reshuffling, edge blocking, composition with churn, and
// the end-to-end split-brain / heal demonstration: a one-shot partition on
// stable-leader produces a transient split-brain that the epoch machinery
// resolves after the heal, with the invariant monitor accounting both.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/stable_leader.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"

namespace mtm {
namespace {

const auto kAlwaysActivated = [](NodeId) { return true; };

void drive(FaultPlan& plan, Round r) {
  plan.round_start(r, kAlwaysActivated, nullptr, nullptr, nullptr);
}

FaultPlanConfig partition_only(PartitionMode mode, NodeId parts, Round start,
                               Round duration, Round period = 0,
                               std::uint64_t seed = 9) {
  FaultPlanConfig cfg;
  cfg.partition.mode = mode;
  cfg.partition.parts = parts;
  cfg.partition.start = start;
  cfg.partition.duration = duration;
  cfg.partition.period = period;
  cfg.seed = seed;
  return cfg;
}

TEST(PartitionSchedule, ValidateRejectsBadWindows) {
  auto reject = [](auto&& tweak) {
    FaultPlanConfig bad = partition_only(PartitionMode::kOneShot, 2, 8, 8);
    tweak(bad);
    EXPECT_THROW(validate(bad), ContractError);
  };
  reject([](FaultPlanConfig& c) { c.partition.parts = 1; });
  reject([](FaultPlanConfig& c) { c.partition.start = 0; });
  reject([](FaultPlanConfig& c) { c.partition.duration = 0; });
  reject([](FaultPlanConfig& c) {
    c.partition.mode = PartitionMode::kPeriodic;
    c.partition.period = c.partition.duration;  // must strictly exceed
  });
  // A disabled schedule is never inspected: bogus parameters are fine.
  FaultPlanConfig off;
  off.partition.parts = 0;
  validate(off);
  EXPECT_FALSE(off.enabled());
}

TEST(PartitionSchedule, PartsMustFitNodeCount) {
  EXPECT_THROW(FaultPlan(partition_only(PartitionMode::kOneShot, 9, 1, 4), 8),
               ContractError);
  FaultPlan ok(partition_only(PartitionMode::kOneShot, 8, 1, 4), 8);
  drive(ok, 1);
  EXPECT_TRUE(ok.partition_active());
}

TEST(PartitionSchedule, OneShotWindowOpensExactlyOnce) {
  FaultPlan plan(partition_only(PartitionMode::kOneShot, 2, 5, 3), 6);
  for (Round r = 1; r <= 20; ++r) {
    drive(plan, r);
    EXPECT_EQ(plan.partition_active(), r >= 5 && r < 8) << "round " << r;
  }
}

TEST(PartitionSchedule, PeriodicWindowsRecurEveryPeriod) {
  FaultPlan plan(partition_only(PartitionMode::kPeriodic, 2, 4, 2, 10), 6);
  for (Round r = 1; r <= 40; ++r) {
    drive(plan, r);
    const bool open = r >= 4 && (r - 4) % 10 < 2;  // [4,6), [14,16), ...
    EXPECT_EQ(plan.partition_active(), open) << "round " << r;
  }
}

TEST(PartitionSchedule, FlappingAlternatesCutAndHealed) {
  FaultPlan plan(partition_only(PartitionMode::kFlapping, 2, 3, 4), 6);
  for (Round r = 1; r <= 40; ++r) {
    drive(plan, r);
    // Cut for 4 rounds from round 3, healed for 4, repeating.
    const bool open = r >= 3 && ((r - 3) / 4) % 2 == 0;
    EXPECT_EQ(plan.partition_active(), open) << "round " << r;
  }
}

TEST(PartitionSchedule, LabelsAreBalancedAndEveryClassOccupied) {
  FaultPlan plan(partition_only(PartitionMode::kOneShot, 3, 1, 4), 10);
  drive(plan, 1);
  ASSERT_TRUE(plan.partition_active());
  std::vector<NodeId> class_size(3, 0);
  for (NodeId u = 0; u < 10; ++u) {
    ASSERT_LT(plan.partition_label(u), 3u);
    ++class_size[plan.partition_label(u)];
  }
  // Round-robin dealing over a permutation: sizes differ by at most one.
  for (NodeId c = 0; c < 3; ++c) {
    EXPECT_GE(class_size[c], 3u);
    EXPECT_LE(class_size[c], 4u);
  }
}

TEST(PartitionSchedule, LabelsAreDeterministicAndReshuffledPerWindow) {
  const auto labels_at = [](FaultPlan& plan, Round upto) {
    for (Round r = 1; r <= upto; ++r) drive(plan, r);
    std::vector<NodeId> labels;
    for (NodeId u = 0; u < 12; ++u) labels.push_back(plan.partition_label(u));
    return labels;
  };
  const FaultPlanConfig cfg =
      partition_only(PartitionMode::kPeriodic, 3, 2, 2, 8, /*seed=*/21);
  FaultPlan a(cfg, 12);
  FaultPlan b(cfg, 12);
  const auto first_a = labels_at(a, 2);   // window 0 open at round 2
  const auto first_b = labels_at(b, 2);
  EXPECT_EQ(first_a, first_b);  // same seed, same cut

  // The next window draws fresh labels from the window-indexed stream.
  const auto second_a = labels_at(a, 10);  // window 1 open at round 10
  EXPECT_NE(first_a, second_a);

  // A different seed cuts along a different line.
  FaultPlanConfig reseeded = cfg;
  reseeded.seed = 22;
  FaultPlan c(reseeded, 12);
  EXPECT_NE(labels_at(c, 2), first_a);
}

TEST(PartitionSchedule, EdgeBlockedOnlyAcrossClassesWhileOpen) {
  FaultPlan plan(partition_only(PartitionMode::kOneShot, 2, 3, 2), 8);
  drive(plan, 1);
  EXPECT_FALSE(plan.partition_active());
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = 0; v < 8; ++v) {
      EXPECT_FALSE(plan.edge_blocked(u, v));  // closed window blocks nothing
    }
  }
  drive(plan, 3);
  ASSERT_TRUE(plan.partition_active());
  std::size_t blocked = 0;
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) {
      const bool cross =
          plan.partition_label(u) != plan.partition_label(v);
      EXPECT_EQ(plan.edge_blocked(u, v), cross);
      EXPECT_EQ(plan.edge_blocked(u, v), plan.edge_blocked(v, u));
      blocked += plan.edge_blocked(u, v);
    }
  }
  EXPECT_EQ(blocked, 16u);  // 4x4 split of K8: exactly 16 cross edges
  drive(plan, 5);  // window over, healed forever
  EXPECT_FALSE(plan.partition_active());
  EXPECT_FALSE(plan.edge_blocked(0, 1));
}

TEST(PartitionSchedule, ComposesWithChurnWithoutShiftingDraws) {
  // The partition stream is keyed by window index, not drawn from the
  // per-node fault streams, so adding a partition schedule must leave the
  // churn event log byte-identical.
  FaultPlanConfig churn;
  churn.crash_prob = 0.2;
  churn.recovery_prob = 0.4;
  churn.seed = 42;
  FaultPlanConfig both = churn;
  both.partition = partition_only(PartitionMode::kFlapping, 3, 2, 5).partition;

  const auto churn_log = [](FaultPlan& plan) {
    std::vector<std::pair<Round, NodeId>> events;
    for (Round r = 1; r <= 100; ++r) {
      plan.round_start(
          r, kAlwaysActivated, nullptr,
          [&events, r](NodeId u) { events.emplace_back(r, u); },
          [&events, r](NodeId u) { events.emplace_back(r, u); });
    }
    return events;
  };
  FaultPlan plain(churn, 12);
  FaultPlan partitioned(both, 12);
  EXPECT_EQ(churn_log(plain), churn_log(partitioned));
}

TEST(EnginePartition, FullPartitionSilencesTheNetwork) {
  // parts == n puts every node in its own class: all edges blocked, so no
  // node sees a neighbor and no connection can form while the window is
  // open; after the heal the election completes normally.
  StaticGraphProvider topo(make_clique(4));
  BlindGossip proto(BlindGossip::shuffled_uids(4, 23));
  EngineConfig cfg;
  cfg.seed = 23;
  cfg.faults.partition.mode = PartitionMode::kOneShot;
  cfg.faults.partition.parts = 4;
  cfg.faults.partition.start = 1;
  cfg.faults.partition.duration = 10;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(10);
  EXPECT_EQ(engine.telemetry().connections(), 0u);
  EXPECT_EQ(engine.telemetry().proposals(), 0u);
  EXPECT_FALSE(proto.stabilized());
  engine.run_rounds(200);
  EXPECT_TRUE(proto.stabilized());
  EXPECT_GT(engine.telemetry().connections(), 0u);
}

TEST(EnginePartition, SplitBrainFormsAndHealsUnderStableLeader) {
  // The tentpole scenario (EXPERIMENTS.md E18 in miniature): a clique runs
  // stable-leader past its initial election, a one-shot partition outlasts
  // the epoch timeout so the leaderless side re-elects (split-brain), and
  // after the heal the higher epoch wins everywhere. The monitor must see
  // the split-brain rounds, exactly one heal, and a reconvergence latency,
  // with zero hard violations.
  StaticGraphProvider topo(make_clique(16));
  const std::vector<Uid> uids = BlindGossip::shuffled_uids(16, 77);
  StableLeader proto(uids, /*epoch_timeout=*/8);
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 77;
  cfg.faults.partition.mode = PartitionMode::kOneShot;
  cfg.faults.partition.parts = 2;
  cfg.faults.partition.start = 32;
  cfg.faults.partition.duration = 40;
  cfg.faults.seed = derive_seed(77, {0x9a47u});
  Engine engine(topo, proto, cfg);

  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/false,
                                           /*settle_rounds=*/128});
  monitor.set_expected_uids(uids);
  engine.set_invariant_monitor(&monitor);

  engine.run_rounds(32 + 40 + 200);

  const InvariantReport& report = monitor.report();
  EXPECT_EQ(report.violations(), 0u);
  EXPECT_EQ(report.epoch_regressions, 0u);
  EXPECT_GT(report.split_brain_rounds, 0u);  // both sides claimed a leader
  EXPECT_GT(report.max_split_brain_run, 0u);
  EXPECT_EQ(report.heals, 1u);
  EXPECT_EQ(report.reconvergences, 1u);
  ASSERT_EQ(report.heal_latencies.size(), 1u);
  EXPECT_GT(report.heal_latencies.front(), 0u);
  EXPECT_LT(report.heal_latencies.front(), 200u);

  // The re-election actually happened (epoch moved past 0) and resolved:
  // every node follows the same leader in the same epoch.
  EXPECT_GT(proto.current_epoch(), 0u);
  EXPECT_TRUE(proto.stabilized());
  const Uid agreed = proto.leader_of(0);
  for (NodeId u = 1; u < 16; ++u) {
    EXPECT_EQ(proto.leader_of(u), agreed);
    EXPECT_EQ(proto.epoch_of(u), proto.epoch_of(0));
  }

  // The metric mirror of the report is populated alongside it.
  EXPECT_EQ(monitor.metrics().counter("invariants.heals").value(), 1u);
  EXPECT_EQ(monitor.metrics().counter("invariants.reconvergences").value(),
            1u);
}

}  // namespace
}  // namespace mtm
