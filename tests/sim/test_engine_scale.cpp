// Engine-at-scale behaviour: a bounded large-n smoke (the TSan preset's
// shard-race catcher), the zero-allocation steady state of the hot path,
// and the round arena's slack-return policy after a degree spike.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/dynamic_graph.hpp"
#include "sim/engine.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: replace the global operator new/delete of this test
// binary with counting forwarders. The counter is read around a window of
// engine rounds to prove the steady state allocates nothing.

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Sanitizers interpose their own allocator machinery and may allocate
// internally at arbitrary points; the zero-alloc EXPECT is meaningless (and
// flaky) there, so it is asserted only in plain builds. The workload still
// runs everywhere.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MTM_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define MTM_SANITIZED_BUILD 1
#endif
#endif

namespace mtm {
namespace {

TEST(EngineScale, LargeShardedSmoke) {
  // n = 1e5 with four shards: big enough that every shard owns tens of
  // thousands of nodes and the CSR inbox build crosses shard boundaries,
  // small enough to stay bounded under TSan. Run twice (sequential vs
  // sharded) and require identical telemetry — the determinism contract at
  // a scale the differential suite cannot afford.
  constexpr NodeId kN = 100000;
  Rng graph_rng(0xb16);
  const Graph graph = make_random_regular(kN, 8, graph_rng);

  auto run = [&graph](std::size_t threads) {
    StaticGraphProvider topology(graph);
    BlindGossip protocol(BlindGossip::shuffled_uids(kN, 0xb16));
    EngineConfig config;
    config.seed = 0xb16;
    config.intra_round_threads = threads;
    Engine engine(topology, protocol, config);
    engine.run_rounds(6);
    return std::pair{engine.telemetry().connections(),
                     engine.telemetry().proposals()};
  };

  const auto sequential = run(1);
  const auto sharded = run(4);
  EXPECT_GT(sequential.first, 0u);
  EXPECT_EQ(sharded, sequential);
}

TEST(EngineScale, SteadyStateRoundsAllocateNothing) {
  // After warm-up the plain hot path (static topology, no faults, b = 0)
  // must not touch the heap: the arena owns every per-round buffer, and
  // protocol callbacks on the BlindGossip path are allocation free.
  constexpr NodeId kN = 4096;
  Rng graph_rng(0xa110c);
  StaticGraphProvider topology(make_random_regular(kN, 8, graph_rng));
  BlindGossip protocol(BlindGossip::shuffled_uids(kN, 0xa110c));
  EngineConfig config;
  config.seed = 0xa110c;
  Engine engine(topology, protocol, config);

  engine.run_rounds(4);  // warm-up: arena views reach their high water

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  engine.run_rounds(32);
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);
#if defined(MTM_SANITIZED_BUILD)
  (void)before;
  (void)after;
#else
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in 32 steady-state rounds";
#endif
}

// Star for the first four rounds, then a cycle forever: max_degree drops
// from n-1 to 2 and never comes back.
class SpikeProvider final : public DynamicGraphProvider {
 public:
  explicit SpikeProvider(NodeId n) : star_(make_star(n)), cycle_(make_cycle(n)) {}

  const Graph& graph_at(Round r) override { return r <= 4 ? star_ : cycle_; }
  NodeId node_count() const override { return star_.node_count(); }
  Round stability() const override { return 4; }

 private:
  Graph star_;
  Graph cycle_;
};

TEST(EngineScale, ArenaReturnsSlackAfterDegreeSpike) {
  // The round arena sizes its scan views to the current max degree and
  // re-checks its high water every 64 rounds; once the spike leaves the
  // window the slack must be handed back instead of pinning peak RSS for
  // the rest of a long trial.
  constexpr NodeId kN = 2048;
  SpikeProvider topology(kN);
  BlindGossip protocol(BlindGossip::shuffled_uids(kN, 0x57a2));
  EngineConfig config;
  config.seed = 0x57a2;
  Engine engine(topology, protocol, config);

  engine.run_rounds(8);  // spike (star) plus the first cycle rounds
  const std::size_t at_spike = engine.scratch_reserved_bytes();

  // Two full shrink windows of cycle-only rounds: the first window still
  // saw the star, the second is all degree-2 and triggers the release.
  engine.run_rounds(140);
  const std::size_t after = engine.scratch_reserved_bytes();

  EXPECT_LT(after, at_spike)
      << "arena kept " << after << " bytes reserved after the degree spike ("
      << at_spike << " at the spike)";
}

}  // namespace
}  // namespace mtm
