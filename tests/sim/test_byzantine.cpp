// Byzantine plans (sim/byzantine.hpp): selection clamping and determinism,
// the four behaviors at the observation layer (tags, payloads, suppression),
// and the end-to-end spoofing run where the invariant monitor records an
// out-of-universe UID spreading without calling it a protocol bug.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/byzantine.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"

namespace mtm {
namespace {

ByzantinePlanConfig byz_config(double fraction, ByzBehavior behavior,
                               std::uint64_t seed = 5) {
  ByzantinePlanConfig cfg;
  cfg.fraction = fraction;
  cfg.behavior = behavior;
  cfg.seed = seed;
  return cfg;
}

std::vector<NodeId> byzantine_set(const ByzantinePlan& plan, NodeId n) {
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < n; ++u) {
    if (plan.is_byzantine(u)) nodes.push_back(u);
  }
  return nodes;
}

TEST(ByzantinePlanConfig, ValidateRejectsBadFractions) {
  validate(ByzantinePlanConfig{});  // disabled default is valid
  ByzantinePlanConfig bad;
  bad.fraction = 1.0;  // everyone hostile leaves nobody to protect
  EXPECT_THROW(validate(bad), ContractError);
  bad.fraction = -0.1;
  EXPECT_THROW(validate(bad), ContractError);
}

TEST(ByzantinePlan, CountIsRoundedAndClamped) {
  const auto count = [](double fraction, NodeId n) {
    return ByzantinePlan(byz_config(fraction, ByzBehavior::kUidSpoof), n, 2)
        .byzantine_count();
  };
  EXPECT_EQ(count(0.5, 10), 5u);
  EXPECT_EQ(count(0.01, 10), 1u);   // a tiny fraction still yields one
  EXPECT_EQ(count(0.99, 10), 9u);   // at least one honest node remains
  EXPECT_EQ(count(0.25, 2), 1u);
  EXPECT_EQ(ByzantinePlan(ByzantinePlanConfig{}, 10, 2).byzantine_count(),
            0u);
}

TEST(ByzantinePlan, SelectionIsSeededAndDeterministic) {
  const ByzantinePlanConfig cfg = byz_config(0.5, ByzBehavior::kUidSpoof, 7);
  const ByzantinePlan a(cfg, 12, 2);
  const ByzantinePlan b(cfg, 12, 2);
  EXPECT_EQ(byzantine_set(a, 12), byzantine_set(b, 12));

  ByzantinePlanConfig reseeded = cfg;
  reseeded.seed = 8;
  const ByzantinePlan c(reseeded, 12, 2);
  EXPECT_NE(byzantine_set(a, 12), byzantine_set(c, 12));
}

TEST(ByzantinePlan, MixAssignsConcreteBehaviors) {
  const ByzantinePlan plan(byz_config(0.5, ByzBehavior::kMix, 3), 16, 2);
  std::set<ByzBehavior> seen;
  for (NodeId u : byzantine_set(plan, 16)) {
    const ByzBehavior b = plan.behavior_of(u);
    EXPECT_NE(b, ByzBehavior::kMix);  // always resolved to a concrete one
    seen.insert(b);
  }
  EXPECT_GE(seen.size(), 2u);  // 8 hash-assigned nodes hit several behaviors

  const ByzantinePlan uniform(byz_config(0.5, ByzBehavior::kStaleReplay), 16,
                              2);
  for (NodeId u : byzantine_set(uniform, 16)) {
    EXPECT_EQ(uniform.behavior_of(u), ByzBehavior::kStaleReplay);
  }
}

TEST(ByzantinePlan, SpoofedTagMasksToTheEngineWidth) {
  ByzantinePlanConfig cfg = byz_config(0.25, ByzBehavior::kUidSpoof);
  cfg.spoof_tag = 3;  // two bits, engine has one
  const ByzantinePlan plan(cfg, 8, /*tag_limit=*/2);
  const NodeId liar = byzantine_set(plan, 8).front();
  for (Round r = 1; r <= 4; ++r) {
    EXPECT_EQ(plan.observed_tag(liar, (liar + 1) % 8, r, /*honest_tag=*/0),
              1u);  // 3 masked to b = 1
  }
}

TEST(ByzantinePlan, HonestAdvertisersPassThrough) {
  const ByzantinePlan plan(byz_config(0.25, ByzBehavior::kEquivocate), 8, 2);
  for (NodeId u = 0; u < 8; ++u) {
    if (plan.is_byzantine(u)) continue;
    EXPECT_EQ(plan.observed_tag(u, (u + 1) % 8, 1, 1), 1u);
    EXPECT_FALSE(plan.suppresses_payload(u));
  }
}

TEST(ByzantinePlan, EquivocationIsPerObserverAndRepeatable) {
  const ByzantinePlan plan(byz_config(0.25, ByzBehavior::kEquivocate, 11), 8,
                           2);
  const NodeId liar = byzantine_set(plan, 8).front();
  // Same (observer, round) query always answers the same...
  for (Round r = 1; r <= 8; ++r) {
    for (NodeId obs = 0; obs < 8; ++obs) {
      if (obs == liar) continue;
      EXPECT_EQ(plan.observed_tag(liar, obs, r, 0),
                plan.observed_tag(liar, obs, r, 0));
    }
  }
  // ...but across observers and rounds both tags appear: the node tells
  // different stories to different neighbors.
  std::set<Tag> told;
  for (Round r = 1; r <= 16; ++r) {
    for (NodeId obs = 0; obs < 8; ++obs) {
      if (obs != liar) told.insert(plan.observed_tag(liar, obs, r, 0));
    }
  }
  EXPECT_EQ(told.size(), 2u);
}

TEST(ByzantinePlan, SilentAcceptSuppressesOnlyItsOwnPayloads) {
  const ByzantinePlan plan(byz_config(0.25, ByzBehavior::kSilentAccept), 8,
                           2);
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_EQ(plan.suppresses_payload(u), plan.is_byzantine(u));
  }
  const ByzantinePlan spoofers(byz_config(0.25, ByzBehavior::kUidSpoof), 8,
                               2);
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_FALSE(spoofers.suppresses_payload(u));  // spoofing still delivers
  }
}

TEST(ByzantinePlan, SpoofRewritesFirstUidOnly) {
  ByzantinePlanConfig cfg = byz_config(0.25, ByzBehavior::kUidSpoof);
  cfg.spoof_uid = 99;
  ByzantinePlan plan(cfg, 8, 2);
  const NodeId liar = byzantine_set(plan, 8).front();

  Payload honest;
  honest.push_uid(41);
  honest.push_uid(42);
  honest.push_bits(0b1011, 4);
  const Payload forged = plan.outgoing_payload(liar, 0, honest);
  ASSERT_EQ(forged.uid_count(), 2u);
  EXPECT_EQ(forged.uid(0), 99u);
  EXPECT_EQ(forged.uid(1), 42u);
  ASSERT_EQ(forged.extra_bit_count(), 4);
  EXPECT_EQ(forged.read_bits(0, 4), 0b1011u);

  // An empty honest payload still gets the forged identity.
  const Payload from_empty = plan.outgoing_payload(liar, 0, Payload{});
  ASSERT_EQ(from_empty.uid_count(), 1u);
  EXPECT_EQ(from_empty.uid(0), 99u);

  // Honest senders pass through untouched.
  const NodeId honest_node = plan.is_byzantine(0) ? 1 : 0;
  const Payload kept = plan.outgoing_payload(honest_node, 2, honest);
  EXPECT_EQ(kept.uid(0), 41u);
}

TEST(ByzantinePlan, StaleReplayFreezesTheFirstPayload) {
  ByzantinePlan plan(byz_config(0.25, ByzBehavior::kStaleReplay), 8, 2);
  const NodeId liar = byzantine_set(plan, 8).front();

  Payload first;
  first.push_uid(7);
  Payload later;
  later.push_uid(8);
  later.push_bits(1, 1);

  const Payload sent_first = plan.outgoing_payload(liar, 0, first);
  EXPECT_EQ(sent_first.uid(0), 7u);
  const Payload sent_later = plan.outgoing_payload(liar, 1, later);
  ASSERT_EQ(sent_later.uid_count(), 1u);
  EXPECT_EQ(sent_later.uid(0), 7u);  // the snapshot, not the fresh payload
  EXPECT_EQ(sent_later.extra_bit_count(), 0);
}

TEST(EngineByzantine, SpoofedMinimumSpreadsAndTheMonitorRecordsIt) {
  // UIDs 100..107 with a spoofed UID 3 outside the universe: the forged
  // "minimum" wins the blind-gossip election. With an adversary attached
  // this is recorded damage (spoofed_uid_rounds), NOT a validity violation
  // — the model has no UID authentication to break.
  const NodeId n = 8;
  std::vector<Uid> uids;
  for (NodeId u = 0; u < n; ++u) uids.push_back(100 + u);
  StaticGraphProvider topo(make_clique(n));
  BlindGossip proto(uids);
  EngineConfig cfg;
  cfg.seed = 31;
  cfg.byzantine.fraction = 0.2;  // 2 of 8 nodes
  cfg.byzantine.behavior = ByzBehavior::kUidSpoof;
  cfg.byzantine.spoof_uid = 3;
  cfg.byzantine.seed = 9;
  Engine engine(topo, proto, cfg);
  ASSERT_NE(engine.byzantine_plan(), nullptr);
  EXPECT_EQ(engine.byzantine_plan()->byzantine_count(), 2u);

  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/true,
                                           /*settle_rounds=*/256});
  monitor.set_expected_uids(uids);
  engine.set_invariant_monitor(&monitor);

  engine.run_rounds(64);  // fail-fast: record-only paths must not throw

  const InvariantReport& report = monitor.report();
  EXPECT_EQ(report.validity_violations, 0u);
  EXPECT_GT(report.spoofed_uid_rounds, 0u);
  bool any_honest_deceived = false;
  for (NodeId u = 0; u < n; ++u) {
    if (engine.byzantine_plan()->is_byzantine(u)) continue;
    any_honest_deceived |= proto.leader_of(u) == 3u;
  }
  EXPECT_TRUE(any_honest_deceived);
}

TEST(EngineByzantine, DisabledPlanIsNotConstructed) {
  StaticGraphProvider topo(make_clique(4));
  BlindGossip proto(BlindGossip::shuffled_uids(4, 1));
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_EQ(engine.byzantine_plan(), nullptr);
}

}  // namespace
}  // namespace mtm
