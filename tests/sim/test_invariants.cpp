// The invariant monitor (sim/invariants.hpp): fail-fast vs record-only
// behavior, the agreement settle window, validity against the injected UID
// universe, dead-leader (ghost) accounting, and the rumor-protocol no-op.
// The partition heal/split-brain accounting is covered end to end in
// tests/sim/test_partition.cpp; the zero-perturbation contract in
// tests/obs/test_zero_perturbation.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/push_pull.hpp"
#include "protocols/stable_leader.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"

namespace mtm {
namespace {

TEST(InvariantMonitor, FailFastAgreementFiresWithNoSettleWindow) {
  // Round 1 of stable-leader on a clique: every node still claims its own
  // UID won, so one component holds many same-epoch claimants. With
  // settle_rounds = 0 the agreement check must fire on the very first
  // observed round — out of Engine::step(), as the contract promises.
  StaticGraphProvider topo(make_clique(8));
  const std::vector<Uid> uids = BlindGossip::shuffled_uids(8, 3);
  StableLeader proto(uids);
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/true,
                                           /*settle_rounds=*/0});
  monitor.set_expected_uids(uids);
  engine.set_invariant_monitor(&monitor);
  EXPECT_THROW(engine.run_rounds(1), InvariantViolation);
  EXPECT_EQ(monitor.report().agreement_violations, 1u);
}

TEST(InvariantMonitor, RecordOnlyCountsInsteadOfThrowing) {
  StaticGraphProvider topo(make_clique(8));
  const std::vector<Uid> uids = BlindGossip::shuffled_uids(8, 3);
  StableLeader proto(uids);
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/false,
                                           /*settle_rounds=*/0});
  monitor.set_expected_uids(uids);
  engine.set_invariant_monitor(&monitor);
  engine.run_rounds(64);
  const InvariantReport& report = monitor.report();
  // The initial election is a "violation" only because the settle window
  // is zero; the point is that record-only mode keeps running and counts.
  EXPECT_GE(report.agreement_violations, 1u);
  EXPECT_GT(report.split_brain_rounds, 0u);
  EXPECT_GE(report.max_split_brain_run, 1u);
  EXPECT_EQ(report.validity_violations, 0u);
  EXPECT_EQ(report.epoch_regressions, 0u);
  EXPECT_EQ(
      monitor.metrics().counter("invariants.agreement_violations").value(),
      report.agreement_violations);
}

TEST(InvariantMonitor, GenerousSettleWindowToleratesTheInitialElection) {
  StaticGraphProvider topo(make_clique(8));
  const std::vector<Uid> uids = BlindGossip::shuffled_uids(8, 3);
  StableLeader proto(uids);
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/true,
                                           /*settle_rounds=*/64});
  monitor.set_expected_uids(uids);
  engine.set_invariant_monitor(&monitor);
  engine.run_rounds(128);  // must not throw
  EXPECT_EQ(monitor.report().violations(), 0u);
  EXPECT_GT(monitor.report().split_brain_rounds, 0u);  // still accounted
  EXPECT_TRUE(proto.stabilized());
}

TEST(InvariantMonitor, ValidityFiresOnAnUnknownUidWithoutAnAdversary) {
  // Misdeclare the universe: the protocol's real UIDs are "never injected",
  // so with no Byzantine plan attached the first observed round is a hard
  // validity violation. This is exactly the check a spoofed UID would trip
  // if an adversary were not declared.
  StaticGraphProvider topo(make_clique(3));
  BlindGossip proto({5, 6, 7});
  EngineConfig cfg;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/true,
                                           /*settle_rounds=*/64});
  monitor.set_expected_uids({100, 101, 102});
  engine.set_invariant_monitor(&monitor);
  EXPECT_THROW(engine.run_rounds(1), InvariantViolation);
  EXPECT_GE(monitor.report().validity_violations, 1u);
}

TEST(InvariantMonitor, WithoutAUniverseValidityIsOff) {
  StaticGraphProvider topo(make_clique(3));
  BlindGossip proto({5, 6, 7});
  EngineConfig cfg;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/true,
                                           /*settle_rounds=*/64});
  engine.set_invariant_monitor(&monitor);  // no set_expected_uids
  engine.run_rounds(32);                   // must not throw
  EXPECT_EQ(monitor.report().violations(), 0u);
}

TEST(InvariantMonitor, GhostFollowingIsRecordOnly) {
  // Blind gossip has no re-election: once the elected leader is crashed by
  // the min-holder oracle, every survivor keeps following the ghost. That
  // is legitimate protocol behavior, so it must be counted, never thrown.
  StaticGraphProvider topo(make_clique(6));
  const std::vector<Uid> uids = BlindGossip::shuffled_uids(6, 17);
  BlindGossip proto(uids);
  EngineConfig cfg;
  cfg.seed = 17;
  cfg.faults.targeting = CrashTargeting::kMinUidHolder;
  cfg.faults.target_every = 8;
  cfg.faults.target_start = 24;  // let the election finish first
  cfg.faults.min_alive = 2;
  cfg.faults.seed = 4;
  Engine engine(topo, proto, cfg);
  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/true,
                                           /*settle_rounds=*/64});
  monitor.set_expected_uids(uids);
  engine.set_invariant_monitor(&monitor);
  engine.run_rounds(64);  // must not throw
  EXPECT_GT(monitor.report().dead_leader_rounds, 0u);
  EXPECT_EQ(monitor.report().violations(), 0u);
}

TEST(InvariantMonitor, RumorProtocolsAreIgnored) {
  StaticGraphProvider topo(make_clique(6));
  PushPull proto({0});
  EngineConfig cfg;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  InvariantMonitor monitor(InvariantConfig{/*fail_fast=*/true,
                                           /*settle_rounds=*/0});
  engine.set_invariant_monitor(&monitor);
  engine.run_rounds(32);  // a leaderless protocol trips nothing, ever
  const InvariantReport& report = monitor.report();
  EXPECT_EQ(report.violations(), 0u);
  EXPECT_EQ(report.split_brain_rounds, 0u);
  EXPECT_EQ(report.heals, 0u);
}

TEST(InvariantViolation, CarriesCheckAndRound) {
  const InvariantViolation v("agreement", 42, "two claimants");
  EXPECT_EQ(v.check(), "agreement");
  EXPECT_EQ(v.round(), 42u);
  EXPECT_NE(std::string(v.what()).find("agreement"), std::string::npos);
  EXPECT_NE(std::string(v.what()).find("42"), std::string::npos);
}

}  // namespace
}  // namespace mtm
