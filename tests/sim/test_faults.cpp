#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/push_pull.hpp"
#include "sim/engine.hpp"
#include "sim/fault_cli.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

const auto kAlwaysActivated = [](NodeId) { return true; };

/// Drives `rounds` rounds of churn and returns the (crash, recovery) event
/// log as (round, node) pairs.
std::vector<std::pair<Round, NodeId>> churn_log(FaultPlan& plan,
                                                Round rounds) {
  std::vector<std::pair<Round, NodeId>> events;
  for (Round r = 1; r <= rounds; ++r) {
    plan.round_start(
        r, kAlwaysActivated, nullptr,
        [&events, r](NodeId u) { events.emplace_back(r, u); },
        [&events, r](NodeId u) { events.emplace_back(r, u); });
  }
  return events;
}

TEST(FaultPlanConfig, ValidateRejectsBadValues) {
  const FaultPlanConfig good;
  validate(good);  // defaults are valid

  auto reject = [](auto&& tweak) {
    FaultPlanConfig bad;
    tweak(bad);
    EXPECT_THROW(validate(bad), ContractError);
  };
  reject([](FaultPlanConfig& c) { c.crash_prob = 1.0; });
  reject([](FaultPlanConfig& c) { c.crash_prob = -0.1; });
  reject([](FaultPlanConfig& c) { c.recovery_prob = 1.5; });
  reject([](FaultPlanConfig& c) { c.min_alive = 0; });
  reject([](FaultPlanConfig& c) { c.edge_degradation = 1.0; });
  reject([](FaultPlanConfig& c) { c.burst.good_to_bad = 2.0; });
  reject([](FaultPlanConfig& c) { c.burst.loss_bad = -1.0; });
  reject([](FaultPlanConfig& c) {
    c.targeting = CrashTargeting::kRandomAlive;
    c.target_every = 0;
  });
  reject([](FaultPlanConfig& c) { c.target_start = 0; });
}

TEST(FaultPlanConfig, EnabledReflectsEveryDimension) {
  EXPECT_FALSE(FaultPlanConfig{}.enabled());
  FaultPlanConfig c;
  c.crash_prob = 0.1;
  EXPECT_TRUE(c.enabled());
  c = {};
  c.burst = GilbertElliott{0.1, 0.3, 0.0, 1.0};
  EXPECT_TRUE(c.enabled());
  EXPECT_TRUE(c.has_link_faults());
  c = {};
  c.edge_degradation = 0.2;
  EXPECT_TRUE(c.enabled());
  EXPECT_TRUE(c.has_link_faults());
  c = {};
  c.targeting = CrashTargeting::kLeaderNode;
  EXPECT_FALSE(c.enabled());  // oracle without a period never fires
  c.target_every = 4;
  EXPECT_TRUE(c.enabled());
  EXPECT_FALSE(c.has_link_faults());
}

TEST(FaultPlan, MinAliveFloorHolds) {
  FaultPlanConfig cfg;
  cfg.crash_prob = 0.9;
  cfg.min_alive = 3;
  cfg.seed = 7;
  FaultPlan plan(cfg, 8);
  for (Round r = 1; r <= 50; ++r) {
    plan.round_start(r, kAlwaysActivated, nullptr, nullptr, nullptr);
    EXPECT_GE(plan.alive_count(), 3u);
  }
  EXPECT_EQ(plan.alive_count(), 3u);  // p=0.9 for 50 rounds pins the floor
}

TEST(FaultPlan, MinAliveMustFitNodeCount) {
  FaultPlanConfig cfg;
  cfg.min_alive = 9;
  EXPECT_THROW(FaultPlan(cfg, 8), ContractError);
}

TEST(FaultPlan, CrashAndRecoveryBookkeepingBalances) {
  FaultPlanConfig cfg;
  cfg.crash_prob = 0.3;
  cfg.recovery_prob = 0.5;
  cfg.seed = 11;
  FaultPlan plan(cfg, 16);
  std::size_t crashes = 0, recoveries = 0;
  for (Round r = 1; r <= 200; ++r) {
    plan.round_start(
        r, kAlwaysActivated, nullptr, [&crashes](NodeId) { ++crashes; },
        [&recoveries](NodeId) { ++recoveries; });
    NodeId alive = 0;
    for (NodeId u = 0; u < 16; ++u) alive += plan.alive(u);
    EXPECT_EQ(alive, plan.alive_count());
    EXPECT_EQ(crashes - recoveries, 16u - plan.alive_count());
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(recoveries, 0u);
}

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultPlanConfig cfg;
  cfg.crash_prob = 0.2;
  cfg.recovery_prob = 0.4;
  cfg.seed = 42;
  FaultPlan a(cfg, 12);
  FaultPlan b(cfg, 12);
  const auto log_a = churn_log(a, 100);
  EXPECT_EQ(log_a, churn_log(b, 100));
  cfg.seed = 43;
  FaultPlan c(cfg, 12);
  EXPECT_NE(log_a, churn_log(c, 100));  // reseed shifts the plan
}

TEST(FaultPlan, OracleSchedule) {
  FaultPlanConfig cfg;
  cfg.targeting = CrashTargeting::kRandomAlive;
  cfg.target_every = 5;
  cfg.target_start = 3;
  FaultPlan plan(cfg, 4);
  EXPECT_FALSE(plan.oracle_due(1));
  EXPECT_FALSE(plan.oracle_due(2));
  EXPECT_TRUE(plan.oracle_due(3));
  EXPECT_FALSE(plan.oracle_due(4));
  EXPECT_TRUE(plan.oracle_due(8));
  EXPECT_TRUE(plan.oracle_due(13));
  EXPECT_FALSE(plan.oracle_due(14));
  EXPECT_FALSE(FaultPlan(FaultPlanConfig{}, 4).oracle_due(3));
}

TEST(FaultPlan, OracleRespectsMinAliveFloor) {
  FaultPlanConfig cfg;
  cfg.targeting = CrashTargeting::kRandomAlive;
  cfg.target_every = 1;
  cfg.min_alive = 2;
  FaultPlan plan(cfg, 4);
  std::size_t kills = 0;
  const auto oracle = [&plan]() -> NodeId {
    for (NodeId u = 0; u < 4; ++u) {
      if (plan.alive(u)) return u;
    }
    return kNoNode;
  };
  for (Round r = 1; r <= 10; ++r) {
    plan.round_start(r, kAlwaysActivated, oracle,
                     [&kills](NodeId) { ++kills; }, nullptr);
  }
  EXPECT_EQ(kills, 2u);  // 4 nodes, floor 2: only two kills ever land
  EXPECT_EQ(plan.alive_count(), 2u);
}

TEST(FaultPlan, BurstChannelDropsInBadState) {
  FaultPlanConfig cfg;
  cfg.burst = GilbertElliott{1.0, 0.0, 0.0, 1.0};  // sticky all-loss BAD
  FaultPlan plan(cfg, 2);
  EXPECT_FALSE(plan.burst_bad(0));
  EXPECT_FALSE(plan.connection_lost(0, 1));  // GOOD state, loss_good = 0
  plan.round_start(1, kAlwaysActivated, nullptr, nullptr, nullptr);
  EXPECT_TRUE(plan.burst_bad(0));
  EXPECT_TRUE(plan.burst_bad(1));
  EXPECT_TRUE(plan.connection_lost(0, 1));  // BAD state, loss_bad = 1
  EXPECT_TRUE(plan.connection_lost(1, 0));
}

TEST(FaultPlan, EdgeDegradationIsSymmetricDeterministicAndBounded) {
  FaultPlanConfig cfg;
  cfg.edge_degradation = 0.4;
  cfg.seed = 5;
  FaultPlan plan(cfg, 8);
  bool any_distinct = false;
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) {
      const double p = plan.edge_drop_prob(u, v);
      EXPECT_EQ(p, plan.edge_drop_prob(v, u));
      EXPECT_GE(p, 0.0);
      EXPECT_LT(p, 0.4);
      any_distinct |= p != plan.edge_drop_prob(0, 1);
    }
  }
  EXPECT_TRUE(any_distinct);  // a hash, not a constant
  EXPECT_EQ(plan.edge_drop_prob(2, 3), FaultPlan(cfg, 8).edge_drop_prob(2, 3));
}

TEST(FaultPlan, DisabledPlanDrawsAndChangesNothing) {
  FaultPlan plan(FaultPlanConfig{}, 4);
  for (Round r = 1; r <= 20; ++r) {
    plan.round_start(
        r, kAlwaysActivated, nullptr, [](NodeId) { FAIL() << "crash"; },
        [](NodeId) { FAIL() << "recovery"; });
  }
  EXPECT_EQ(plan.alive_count(), 4u);
  EXPECT_FALSE(plan.connection_lost(0, 1));
}

TEST(SelectCrashTarget, LeaderAwareModesNeedALeaderElectionProtocol) {
  Rng rng(1);
  PushPull rumor({0});  // not a LeaderElectionProtocol
  const auto all = [](NodeId) { return true; };
  EXPECT_EQ(select_crash_target(CrashTargeting::kMinUidHolder, rumor, 4, all,
                                rng),
            kNoNode);
  EXPECT_EQ(
      select_crash_target(CrashTargeting::kLeaderNode, rumor, 4, all, rng),
      kNoNode);
  EXPECT_EQ(select_crash_target(CrashTargeting::kNone, rumor, 4, all, rng),
            kNoNode);
}

TEST(SelectCrashTarget, ModesRespectEligibilityAndPickTheMinimum) {
  Rng rng(2);
  // uids: node 0 holds 30, node 1 holds 10 (the minimum), node 2 holds 20.
  BlindGossip proto({30, 10, 20});
  StaticGraphProvider topo(make_clique(3));
  Engine engine(topo, proto, EngineConfig{});  // init()s the protocol
  const auto all = [](NodeId) { return true; };

  // Pre-gossip, each node's leader_of is its own UID: node 1 is both the
  // minimal holder and the (target) leader node.
  EXPECT_EQ(select_crash_target(CrashTargeting::kMinUidHolder, proto, 3, all,
                                rng),
            NodeId{1});
  EXPECT_EQ(
      select_crash_target(CrashTargeting::kLeaderNode, proto, 3, all, rng),
      NodeId{1});

  // With node 1 ineligible (already dead), min-holder falls to the next
  // smallest value and leader targeting finds no eligible victim.
  const auto not_one = [](NodeId u) { return u != 1; };
  EXPECT_EQ(select_crash_target(CrashTargeting::kMinUidHolder, proto, 3,
                                not_one, rng),
            NodeId{2});
  EXPECT_EQ(select_crash_target(CrashTargeting::kLeaderNode, proto, 3,
                                not_one, rng),
            kNoNode);

  // Random targeting with nobody eligible draws nothing and returns none.
  const auto nobody = [](NodeId) { return false; };
  EXPECT_EQ(select_crash_target(CrashTargeting::kRandomAlive, proto, 3,
                                nobody, rng),
            kNoNode);
  const NodeId victim =
      select_crash_target(CrashTargeting::kRandomAlive, proto, 3, all, rng);
  EXPECT_LT(victim, 3u);
}

TEST(EngineFaults, RecoveryOnlyPlanIsByteIdenticalToNoPlan) {
  // The determinism contract: fault draws never touch the node streams, so
  // an enabled plan that never fires leaves the execution untouched.
  const auto run = [](bool with_plan) {
    StaticGraphProvider topo(make_star_line(2, 4));
    BlindGossip proto(BlindGossip::shuffled_uids(10, 31));
    EngineConfig cfg;
    cfg.seed = 31;
    if (with_plan) cfg.faults.recovery_prob = 0.5;  // nobody ever crashes
    Engine engine(topo, proto, cfg);
    const RunResult r = run_until_stabilized(engine, 1u << 20);
    return std::pair{r.rounds, engine.telemetry().connections()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(EngineFaults, BurstLossDropsCountedSeparately) {
  // An all-loss burst channel kills every established connection: the
  // protocol cannot make progress and every drop lands in fault_dropped.
  StaticGraphProvider topo(make_clique(6));
  BlindGossip proto(BlindGossip::shuffled_uids(6, 13));
  EngineConfig cfg;
  cfg.seed = 13;
  cfg.faults.burst = GilbertElliott{1.0, 0.0, 1.0, 1.0};
  Engine engine(topo, proto, cfg);
  engine.run_rounds(40);
  EXPECT_FALSE(proto.stabilized());
  EXPECT_GT(engine.telemetry().fault_dropped(), 0u);
  EXPECT_EQ(engine.telemetry().fault_dropped(), engine.telemetry().dropped());
  EXPECT_EQ(engine.telemetry().delivered(), 0u);
  EXPECT_GT(engine.telemetry().wasted_rounds(), 0u);
}

TEST(GilbertElliott, StationaryBadOccupancyMatchesClosedForm) {
  // The two-state chain's stationary BAD occupancy has the closed form
  // pi(BAD) = g2b / (g2b + b2g); the empirical fraction of (node, round)
  // samples each CLI burst preset spends in BAD must match it. This pins
  // the channel's transition semantics (one flip draw per node per round,
  // GOOD start) against silent drift.
  const NodeId n = 64;
  const Round rounds = 2000;
  for (int preset = 1; preset <= kBurstPresetMax; ++preset) {
    const GilbertElliott chain = burst_preset(preset);
    FaultPlanConfig cfg;
    cfg.burst = chain;
    cfg.seed = 100 + static_cast<std::uint64_t>(preset);
    FaultPlan plan(cfg, n);
    std::uint64_t bad_samples = 0;
    for (Round r = 1; r <= rounds; ++r) {
      plan.round_start(r, kAlwaysActivated, nullptr, nullptr, nullptr);
      for (NodeId u = 0; u < n; ++u) bad_samples += plan.burst_bad(u);
    }
    const double expected =
        chain.good_to_bad / (chain.good_to_bad + chain.bad_to_good);
    const double empirical = static_cast<double>(bad_samples) /
                             (static_cast<double>(n) * rounds);
    EXPECT_NEAR(empirical, expected, 0.02) << "preset " << preset;
  }
}

TEST(EngineFaults, CrashedNodesAreInvisible) {
  // Crash everything except the floor: the survivors keep running, the
  // crashed majority is neither scanned nor called back.
  StaticGraphProvider topo(make_clique(8));
  BlindGossip proto(BlindGossip::shuffled_uids(8, 19));
  EngineConfig cfg;
  cfg.seed = 19;
  cfg.faults.crash_prob = 0.9;
  cfg.faults.min_alive = 2;
  cfg.faults.seed = 3;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(50);
  EXPECT_EQ(engine.telemetry().crashes(), 6u);
  EXPECT_EQ(engine.telemetry().recoveries(), 0u);
}

}  // namespace
}  // namespace mtm
