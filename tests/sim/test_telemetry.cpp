#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(Telemetry, CountersAccumulate) {
  Telemetry t;
  t.begin_round(1, false);
  t.set_active_nodes(4);
  t.count_proposal();
  t.count_proposal();
  t.count_connection();
  t.count_payload_uids(2);
  t.end_round();
  EXPECT_EQ(t.rounds(), 1u);
  EXPECT_EQ(t.proposals(), 2u);
  EXPECT_EQ(t.connections(), 1u);
  EXPECT_EQ(t.payload_uids(), 2u);
  EXPECT_DOUBLE_EQ(t.proposal_success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(t.connections_per_round(), 1.0);
}

TEST(Telemetry, EmptyRates) {
  Telemetry t;
  EXPECT_DOUBLE_EQ(t.proposal_success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(t.connections_per_round(), 0.0);
}

TEST(Telemetry, PerRoundRecordingOptIn) {
  Telemetry off;
  off.begin_round(1, false);
  off.set_active_nodes(3);
  off.count_proposal();
  off.end_round();
  EXPECT_TRUE(off.per_round().empty());

  Telemetry on;
  on.begin_round(1, true);
  on.set_active_nodes(3);
  on.count_proposal();
  on.count_connection();
  on.end_round();
  on.begin_round(2, true);
  on.set_active_nodes(3);
  on.count_proposal();
  on.end_round();
  ASSERT_EQ(on.per_round().size(), 2u);
  EXPECT_EQ(on.per_round()[0].proposals, 1u);
  EXPECT_EQ(on.per_round()[0].connections, 1u);
  EXPECT_EQ(on.per_round()[1].proposals, 1u);
  EXPECT_EQ(on.per_round()[1].connections, 0u);
  EXPECT_EQ(on.per_round()[1].active_nodes, 3u);
}

TEST(Telemetry, EngineRecordsPerRoundWhenEnabled) {
  StaticGraphProvider topo(make_clique(6));
  BlindGossip proto(BlindGossip::shuffled_uids(6, 1));
  EngineConfig cfg;
  cfg.record_rounds = true;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(10);
  ASSERT_EQ(engine.telemetry().per_round().size(), 10u);
  for (const RoundStats& rs : engine.telemetry().per_round()) {
    EXPECT_EQ(rs.active_nodes, 6u);
    EXPECT_LE(rs.connections, 3u);  // at most n/2 connections per round
    EXPECT_LE(rs.connections, rs.proposals);
  }
}

TEST(Telemetry, ConnectionsBoundedByHalfNodes) {
  // Mobile telephone model invariant: each node in at most one connection,
  // so connections per round <= n/2.
  StaticGraphProvider topo(make_clique(10));
  BlindGossip proto(BlindGossip::shuffled_uids(10, 2));
  EngineConfig cfg;
  cfg.record_rounds = true;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(50);
  for (const RoundStats& rs : engine.telemetry().per_round()) {
    EXPECT_LE(rs.connections, 5u);
  }
}

}  // namespace
}  // namespace mtm
