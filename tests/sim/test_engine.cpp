#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "sim/dynamic_graph.hpp"

namespace mtm {
namespace {

/// Scriptable protocol for engine unit tests: records every callback and
/// follows per-node instructions for tags and decisions.
class ScriptedProtocol : public Protocol {
 public:
  std::string name() const override { return "scripted"; }

  void init(NodeId node_count, std::span<Rng> node_rngs) override {
    node_count_ = node_count;
    init_rng_count_ = node_rngs.size();
  }

  Tag advertise(NodeId u, Round local_round, Rng&) override {
    advertise_calls.push_back({u, local_round});
    auto it = tags.find(u);
    return it == tags.end() ? 0 : it->second;
  }

  Decision decide(NodeId u, Round local_round,
                  std::span<const NeighborInfo> view, Rng&) override {
    decide_calls.push_back({u, local_round});
    views[u].assign(view.begin(), view.end());
    auto it = sends.find(u);
    if (it == sends.end()) return Decision::receive();
    return Decision::send(it->second);
  }

  Payload make_payload(NodeId u, NodeId, Round) override {
    Payload p;
    p.push_uid(u);
    return p;
  }

  void receive_payload(NodeId u, NodeId peer, const Payload& payload,
                       Round) override {
    received[u].push_back(peer);
    EXPECT_EQ(payload.uid(0), peer);
  }

  void finish_round(NodeId u, Round) override { finished.push_back(u); }

  bool stabilized() const override { return false; }

  NodeId node_count_ = 0;
  std::size_t init_rng_count_ = 0;
  std::map<NodeId, Tag> tags;
  std::map<NodeId, NodeId> sends;  // node -> proposal target
  std::vector<std::pair<NodeId, Round>> advertise_calls;
  std::vector<std::pair<NodeId, Round>> decide_calls;
  std::map<NodeId, std::vector<NeighborInfo>> views;
  std::map<NodeId, std::vector<NodeId>> received;
  std::vector<NodeId> finished;
};

TEST(Engine, InitPassesNodeCountAndStreams) {
  StaticGraphProvider topo(make_path(4));
  ScriptedProtocol proto;
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_EQ(proto.node_count_, 4u);
  EXPECT_EQ(proto.init_rng_count_, 4u);
  EXPECT_EQ(engine.node_count(), 4u);
  EXPECT_EQ(engine.rounds_executed(), 0u);
}

TEST(Engine, ProposalToReceiverConnects) {
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  proto.sends[0] = 1;  // 0 proposes to 1; 1 receives
  Engine engine(topo, proto, EngineConfig{});
  engine.step();
  ASSERT_EQ(proto.received[1].size(), 1u);
  EXPECT_EQ(proto.received[1][0], 0u);
  ASSERT_EQ(proto.received[0].size(), 1u);
  EXPECT_EQ(proto.received[0][0], 1u);
  EXPECT_EQ(engine.telemetry().connections(), 1u);
  EXPECT_EQ(engine.telemetry().proposals(), 1u);
}

TEST(Engine, SenderCannotReceive) {
  // Both endpoints send to each other: neither may accept (paper: "A node
  // that sends a proposal cannot also receive a proposal").
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  proto.sends[0] = 1;
  proto.sends[1] = 0;
  Engine engine(topo, proto, EngineConfig{});
  engine.step();
  EXPECT_TRUE(proto.received[0].empty());
  EXPECT_TRUE(proto.received[1].empty());
  EXPECT_EQ(engine.telemetry().connections(), 0u);
  EXPECT_EQ(engine.telemetry().proposals(), 2u);
}

TEST(Engine, ReceiverAcceptsExactlyOne) {
  // Star: all 4 leaves propose to the center, which receives.
  StaticGraphProvider topo(make_star(5));
  ScriptedProtocol proto;
  for (NodeId leaf = 1; leaf < 5; ++leaf) proto.sends[leaf] = 0;
  Engine engine(topo, proto, EngineConfig{});
  engine.step();
  EXPECT_EQ(proto.received[0].size(), 1u);  // exactly one accepted
  EXPECT_EQ(engine.telemetry().connections(), 1u);
  // The accepted sender got the center's payload; the rest got nothing.
  std::size_t senders_with_reply = 0;
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    senders_with_reply += proto.received[leaf].size();
  }
  EXPECT_EQ(senders_with_reply, 1u);
}

TEST(Engine, AcceptanceIsUniformAcrossSenders) {
  // Run many independent rounds; each of 4 proposers to the star center
  // should be accepted roughly 1/4 of the time.
  std::map<NodeId, int> accepted;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    StaticGraphProvider topo(make_star(5));
    ScriptedProtocol proto;
    for (NodeId leaf = 1; leaf < 5; ++leaf) proto.sends[leaf] = 0;
    EngineConfig cfg;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    engine.step();
    ASSERT_EQ(proto.received[0].size(), 1u);
    ++accepted[proto.received[0][0]];
  }
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    EXPECT_GT(accepted[leaf], 55) << "leaf " << leaf;   // expect ~100
    EXPECT_LT(accepted[leaf], 145) << "leaf " << leaf;
  }
}

TEST(Engine, TagsVisibleInNeighborViews) {
  StaticGraphProvider topo(make_path(3));
  ScriptedProtocol proto;
  proto.tags[0] = 1;
  proto.tags[1] = 0;
  proto.tags[2] = 1;
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  engine.step();
  ASSERT_EQ(proto.views[1].size(), 2u);
  EXPECT_EQ(proto.views[1][0].id, 0u);
  EXPECT_EQ(proto.views[1][0].tag, 1u);
  EXPECT_EQ(proto.views[1][1].id, 2u);
  EXPECT_EQ(proto.views[1][1].tag, 1u);
  ASSERT_EQ(proto.views[0].size(), 1u);
  EXPECT_EQ(proto.views[0][0].tag, 0u);
}

TEST(Engine, TagWidthEnforced) {
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  proto.tags[0] = 1;  // needs b >= 1
  Engine engine(topo, proto, EngineConfig{});  // b = 0
  EXPECT_THROW(engine.step(), ContractError);
}

TEST(Engine, ProposalTargetMustBeNeighbor) {
  StaticGraphProvider topo(make_path(3));  // 0-1-2
  ScriptedProtocol proto;
  proto.sends[0] = 2;  // not adjacent to 0
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_THROW(engine.step(), ContractError);
}

TEST(Engine, ClassicalModeAcceptsAll) {
  StaticGraphProvider topo(make_star(5));
  ScriptedProtocol proto;
  for (NodeId leaf = 1; leaf < 5; ++leaf) proto.sends[leaf] = 0;
  EngineConfig cfg;
  cfg.classical_mode = true;
  Engine engine(topo, proto, cfg);
  engine.step();
  EXPECT_EQ(proto.received[0].size(), 4u);  // all proposals connect
  EXPECT_EQ(engine.telemetry().connections(), 4u);
}

TEST(Engine, ClassicalModeSenderAlsoReceives) {
  // 0 -> 1 and 1 -> 0 both connect in classical mode.
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  proto.sends[0] = 1;
  proto.sends[1] = 0;
  EngineConfig cfg;
  cfg.classical_mode = true;
  Engine engine(topo, proto, cfg);
  engine.step();
  EXPECT_EQ(proto.received[0].size(), 2u);
  EXPECT_EQ(proto.received[1].size(), 2u);
}

TEST(Engine, InactiveNodesInvisibleAndIdle) {
  StaticGraphProvider topo(make_path(3));
  ScriptedProtocol proto;
  EngineConfig cfg;
  cfg.activation_rounds = {1, 3, 1};  // node 1 activates in round 3
  Engine engine(topo, proto, cfg);
  engine.step();  // round 1
  // Node 1 never advertised/decided; nodes 0 and 2 see empty views (their
  // only neighbor is 1, which is inactive).
  for (const auto& [u, lr] : proto.advertise_calls) EXPECT_NE(u, 1u);
  EXPECT_TRUE(proto.views[0].empty());
  EXPECT_TRUE(proto.views[2].empty());
  engine.step();  // round 2: still inactive
  engine.step();  // round 3: active now
  bool node1_advertised = false;
  for (const auto& [u, lr] : proto.advertise_calls) {
    if (u == 1) {
      node1_advertised = true;
      EXPECT_EQ(lr, 1u);  // local round restarts at activation
    }
  }
  EXPECT_TRUE(node1_advertised);
  EXPECT_EQ(engine.all_active_round(), 3u);
}

TEST(Engine, LocalRoundsOffsetByActivation) {
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  EngineConfig cfg;
  cfg.activation_rounds = {1, 2};
  Engine engine(topo, proto, cfg);
  engine.run_rounds(3);
  // Node 0 local rounds: 1,2,3. Node 1: 1,2 (activated at round 2).
  std::map<NodeId, std::vector<Round>> seen;
  for (const auto& [u, lr] : proto.advertise_calls) seen[u].push_back(lr);
  EXPECT_EQ(seen[0], (std::vector<Round>{1, 2, 3}));
  EXPECT_EQ(seen[1], (std::vector<Round>{1, 2}));
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [] {
    StaticGraphProvider topo(make_clique(6));
    ScriptedProtocol proto;
    proto.sends[0] = 1;
    proto.sends[2] = 1;
    proto.sends[3] = 4;
    EngineConfig cfg;
    cfg.seed = 99;
    Engine engine(topo, proto, cfg);
    engine.run_rounds(5);
    return proto.received;
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, ValidatesConfig) {
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  EngineConfig bad_bits;
  bad_bits.tag_bits = 64;
  EXPECT_THROW(Engine(topo, proto, bad_bits), ContractError);
  EngineConfig bad_activation;
  bad_activation.activation_rounds = {1};  // wrong size
  EXPECT_THROW(Engine(topo, proto, bad_activation), ContractError);
  EngineConfig zero_activation;
  zero_activation.activation_rounds = {1, 0};
  EXPECT_THROW(Engine(topo, proto, zero_activation), ContractError);
}

TEST(Engine, ActivationErrorsNameTheActualNumbers) {
  // The validation messages must carry the offending values, not just the
  // rule: a wrong-size schedule names both counts, a zero entry names the
  // node and its bogus round.
  StaticGraphProvider topo(make_path(3));
  ScriptedProtocol proto;
  EngineConfig wrong_size;
  wrong_size.activation_rounds = {1, 2};
  try {
    Engine engine(topo, proto, wrong_size);
    FAIL() << "wrong-size activation schedule must be rejected";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got 2"), std::string::npos) << what;
    EXPECT_NE(what.find("3 nodes"), std::string::npos) << what;
  }
  EngineConfig zero_entry;
  zero_entry.activation_rounds = {1, 0, 2};
  try {
    Engine engine(topo, proto, zero_entry);
    FAIL() << "zero activation round must be rejected";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node 1"), std::string::npos) << what;
    EXPECT_NE(what.find("activation round 0"), std::string::npos) << what;
  }
}

TEST(Engine, ValidatesFaultConfig) {
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  EngineConfig bad_faults;
  bad_faults.faults.crash_prob = 1.0;
  EXPECT_THROW(Engine(topo, proto, bad_faults), ContractError);
  EngineConfig bad_floor;
  bad_floor.faults.crash_prob = 0.1;
  bad_floor.faults.min_alive = 3;  // only 2 nodes
  EXPECT_THROW(Engine(topo, proto, bad_floor), ContractError);
}

TEST(Engine, PayloadUidTelemetry) {
  StaticGraphProvider topo(make_path(2));
  ScriptedProtocol proto;
  proto.sends[0] = 1;
  Engine engine(topo, proto, EngineConfig{});
  engine.step();
  EXPECT_EQ(engine.telemetry().payload_uids(), 2u);  // one uid each way
}

}  // namespace
}  // namespace mtm
