#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/push_pull.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(ProgressTrace, SamplesPerRound) {
  StaticGraphProvider topo(make_clique(8));
  PushPull proto({0});
  EngineConfig cfg;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);

  ProgressTrace trace({{"informed",
                        [&proto](const Scheduler&) {
                          return static_cast<double>(proto.informed_count());
                        }},
                       ProgressTrace::connections_total()});
  const RunResult result = run_until_stabilized(
      engine, 10000, [&trace](const Scheduler& e) { trace.sample(e); });
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(trace.row_count(), result.rounds);
  // Informed counts are monotone and end at n.
  const auto& informed = trace.column(0);
  for (std::size_t i = 1; i < informed.size(); ++i) {
    EXPECT_GE(informed[i], informed[i - 1]);
  }
  EXPECT_DOUBLE_EQ(informed.back(), 8.0);
  // Rounds are 1..R.
  EXPECT_EQ(trace.rounds().front(), 1u);
  EXPECT_EQ(trace.rounds().back(), result.rounds);
}

TEST(ProgressTrace, CsvFormat) {
  StaticGraphProvider topo(make_path(2));
  PushPull proto({0});
  Engine engine(topo, proto, EngineConfig{});
  ProgressTrace trace({{"x", [](const Scheduler&) { return 1.5; }}});
  engine.step();
  trace.sample(engine);
  const std::string csv = trace.to_csv();
  EXPECT_EQ(csv, "round,x\n1,1.5\n");
}

TEST(ProgressTrace, WriteCsvFile) {
  const std::string path = ::testing::TempDir() + "/mtm_trace_test.csv";
  StaticGraphProvider topo(make_path(2));
  PushPull proto({0});
  Engine engine(topo, proto, EngineConfig{});
  ProgressTrace trace({ProgressTrace::proposals_total()});
  engine.step();
  trace.sample(engine);
  trace.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "round,proposals");
  std::remove(path.c_str());
}

TEST(ProgressTrace, WriteCsvFailureThrows) {
  ProgressTrace trace({ProgressTrace::connections_total()});
  EXPECT_THROW(trace.write_csv("/nonexistent/dir/trace.csv"),
               std::runtime_error);
}

TEST(ProgressTrace, ValidatesColumns) {
  EXPECT_THROW(ProgressTrace({}), ContractError);
  EXPECT_THROW(ProgressTrace({{"x", nullptr}}), ContractError);
  EXPECT_THROW(ProgressTrace({{"", [](const Scheduler&) { return 0.0; }}}),
               ContractError);
}

TEST(ProgressTrace, ColumnIndexValidated) {
  ProgressTrace trace({ProgressTrace::connections_total()});
  EXPECT_THROW(trace.column(1), ContractError);
}

}  // namespace
}  // namespace mtm
