// Failure injection: dropped connections slow but never break the paper's
// monotone algorithms.
#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(FailureInjection, DropRateMatchesConfig) {
  StaticGraphProvider topo(make_clique(16));
  BlindGossip proto(BlindGossip::shuffled_uids(16, 1));
  EngineConfig cfg;
  cfg.seed = 1;
  cfg.connection_failure_prob = 0.5;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(500);
  const auto& t = engine.telemetry();
  ASSERT_GT(t.connections(), 500u);
  const double rate = static_cast<double>(t.failed_connections()) /
                      static_cast<double>(t.connections());
  EXPECT_NEAR(rate, 0.5, 0.06);
}

TEST(FailureInjection, ZeroProbabilityIsByteIdentical) {
  // p = 0 must not consume any extra randomness: identical execution to a
  // default-config run (protects the golden pins).
  auto run = [](double p) {
    StaticGraphProvider topo(make_clique(10));
    BlindGossip proto(BlindGossip::shuffled_uids(10, 2));
    EngineConfig cfg;
    cfg.seed = 2;
    cfg.connection_failure_prob = p;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 100000).rounds;
  };
  EXPECT_EQ(run(0.0), run(0.0));
  StaticGraphProvider topo(make_clique(10));
  BlindGossip proto(BlindGossip::shuffled_uids(10, 2));
  EngineConfig cfg;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  EXPECT_EQ(run(0.0), run_until_stabilized(engine, 100000).rounds);
}

TEST(FailureInjection, NoPayloadOnDroppedConnections) {
  StaticGraphProvider topo(make_path(2));
  BlindGossip proto(BlindGossip::shuffled_uids(2, 3));
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.connection_failure_prob = 0.999;  // nearly everything drops
  Engine engine(topo, proto, cfg);
  engine.run_rounds(100);
  const auto& t = engine.telemetry();
  // Payload UIDs flow only on surviving connections (2 per survivor).
  EXPECT_EQ(t.payload_uids(),
            2 * (t.connections() - t.failed_connections()));
}

class FailureConvergence : public ::testing::TestWithParam<int> {};

TEST_P(FailureConvergence, AllLeaderAlgosSurviveHeavyLoss) {
  const auto algo = static_cast<LeaderAlgo>(GetParam());
  LeaderExperiment spec;
  spec.algo = algo;
  spec.node_count = 12;
  spec.max_degree_bound = 11;
  spec.network_size_bound = 12;
  spec.topology = static_topology(make_clique(12));
  spec.controls.max_rounds = 1u << 23;
  spec.controls.trials = 3;
  spec.controls.seed = 4;
  spec.controls.connection_failure_prob = 0.7;
  for (const RunResult& r : run_leader_experiment(spec)) {
    EXPECT_TRUE(r.converged) << leader_algo_name(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algos, FailureConvergence,
    ::testing::Values(static_cast<int>(LeaderAlgo::kBlindGossip),
                      static_cast<int>(LeaderAlgo::kBitConvergence),
                      static_cast<int>(LeaderAlgo::kAsyncBitConvergence),
                      static_cast<int>(LeaderAlgo::kClassicalGossip)));

TEST(FailureInjection, LossSlowsConvergence) {
  auto mean_rounds = [](double p) {
    LeaderExperiment spec;
    spec.algo = LeaderAlgo::kBlindGossip;
    spec.node_count = 16;
    spec.topology = static_topology(make_clique(16));
    spec.controls.max_rounds = 1u << 23;
    spec.controls.trials = 8;
    spec.controls.seed = 5;
    spec.controls.connection_failure_prob = p;
    return measure_leader(spec).mean;
  };
  EXPECT_GT(mean_rounds(0.8), mean_rounds(0.0));
}

TEST(FailureInjection, ValidatesProbability) {
  StaticGraphProvider topo(make_path(2));
  BlindGossip proto(BlindGossip::shuffled_uids(2, 6));
  EngineConfig bad;
  bad.connection_failure_prob = 1.0;  // would deadlock every protocol
  EXPECT_THROW(Engine(topo, proto, bad), ContractError);
  bad.connection_failure_prob = -0.1;
  EXPECT_THROW(Engine(topo, proto, bad), ContractError);
}

}  // namespace
}  // namespace mtm
