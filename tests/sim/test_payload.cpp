#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "sim/model.hpp"

namespace mtm {
namespace {

TEST(Payload, UidRoundTrip) {
  Payload p;
  p.push_uid(42);
  p.push_uid(7);
  ASSERT_EQ(p.uid_count(), 2u);
  EXPECT_EQ(p.uid(0), 42u);
  EXPECT_EQ(p.uid(1), 7u);
}

TEST(Payload, UidCapEnforced) {
  Payload p;
  p.push_uid(1);
  p.push_uid(2);
  EXPECT_THROW(p.push_uid(3), ContractError);
}

TEST(Payload, UidIndexValidated) {
  Payload p;
  p.push_uid(1);
  EXPECT_THROW(p.uid(1), ContractError);
}

TEST(Payload, BitsRoundTrip) {
  Payload p;
  p.push_bits(0b1011, 4);
  p.push_bits(0xffff, 16);
  EXPECT_EQ(p.extra_bit_count(), 20);
  EXPECT_EQ(p.read_bits(0, 4), 0b1011u);
  EXPECT_EQ(p.read_bits(4, 16), 0xffffu);
}

TEST(Payload, BitsCrossWordBoundary) {
  Payload p;
  p.push_bits(0x123456789abcdef0ull, 64);
  p.push_bits(0x5a5a, 16);
  EXPECT_EQ(p.read_bits(0, 64), 0x123456789abcdef0ull);
  EXPECT_EQ(p.read_bits(64, 16), 0x5a5au);
  // Read straddling the word boundary.
  const std::uint64_t tail4 = p.read_bits(60, 8);
  EXPECT_EQ(tail4 & 0xf, 0x1u);          // top nibble of first word
  EXPECT_EQ((tail4 >> 4) & 0xf, 0xau);   // bottom nibble of 0x5a5a
}

TEST(Payload, BitCapEnforced) {
  Payload p;
  p.push_bits(0, 64);
  p.push_bits(0, 64);
  EXPECT_THROW(p.push_bits(0, 1), ContractError);
}

TEST(Payload, ValueWiderThanDeclaredRejected) {
  Payload p;
  EXPECT_THROW(p.push_bits(4, 2), ContractError);  // 4 needs 3 bits
}

TEST(Payload, ReadBoundsValidated) {
  Payload p;
  p.push_bits(1, 4);
  EXPECT_THROW(p.read_bits(1, 4), ContractError);
  EXPECT_THROW(p.read_bits(-1, 2), ContractError);
  EXPECT_THROW(p.read_bits(0, 0), ContractError);
}

TEST(IdPair, OrderingTagFirstThenUid) {
  EXPECT_LT((IdPair{5, 1}), (IdPair{1, 2}));  // smaller tag wins
  EXPECT_LT((IdPair{1, 3}), (IdPair{2, 3}));  // tie on tag -> smaller uid
  EXPECT_FALSE((IdPair{1, 3}) < (IdPair{1, 3}));
  EXPECT_EQ((IdPair{1, 3}), (IdPair{1, 3}));
}

TEST(Decision, Factories) {
  const Decision r = Decision::receive();
  EXPECT_FALSE(r.is_send());
  const Decision s = Decision::send(9);
  EXPECT_TRUE(s.is_send());
  EXPECT_EQ(s.target, 9u);
}

}  // namespace
}  // namespace mtm
