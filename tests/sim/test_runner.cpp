#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/push_pull.hpp"

namespace mtm {
namespace {

TEST(Runner, StopsAtStabilization) {
  StaticGraphProvider topo(make_clique(8));
  BlindGossip proto(BlindGossip::shuffled_uids(8, 1));
  EngineConfig cfg;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult result = run_until_stabilized(engine, 10000);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_LT(result.rounds, 10000u);
  EXPECT_TRUE(proto.stabilized());
  EXPECT_EQ(result.rounds, engine.rounds_executed());
  EXPECT_EQ(result.rounds_after_last_activation, result.rounds);
  // Communication-cost fields mirror the engine telemetry.
  EXPECT_EQ(result.connections, engine.telemetry().connections());
  EXPECT_EQ(result.proposals, engine.telemetry().proposals());
  EXPECT_GT(result.connections, 0u);
  EXPECT_GE(result.proposals, result.connections);
}

TEST(Runner, RespectsMaxRounds) {
  // A two-node path with push-pull: cap at 1 round may not converge; cap is
  // honored either way.
  StaticGraphProvider topo(make_star_line(8, 8));
  BlindGossip proto(BlindGossip::shuffled_uids(72, 2));
  Engine engine(topo, proto, EngineConfig{});
  const RunResult result = run_until_stabilized(engine, 5);
  EXPECT_EQ(engine.rounds_executed(), 5u);
  EXPECT_FALSE(result.converged);  // star-line needs far more than 5 rounds
}

TEST(Runner, PerRoundCallbackInvoked) {
  StaticGraphProvider topo(make_clique(4));
  BlindGossip proto(BlindGossip::shuffled_uids(4, 3));
  Engine engine(topo, proto, EngineConfig{});
  Round callbacks = 0;
  const RunResult result = run_until_stabilized(
      engine, 1000, [&callbacks](const Scheduler&) { ++callbacks; });
  EXPECT_EQ(callbacks, result.rounds);
}

// The Runner.PerRound* tests pin the observer contract documented in
// runner.hpp: `per_round` fires after EVERY executed round — including the
// stabilization round's final state and the max_rounds-exhaustion round —
// and never fires when zero rounds execute.

TEST(Runner, PerRoundObservesStabilizationRoundFinalState) {
  StaticGraphProvider topo(make_clique(6));
  BlindGossip proto(BlindGossip::shuffled_uids(6, 21));
  EngineConfig cfg;
  cfg.seed = 21;
  Engine engine(topo, proto, cfg);
  Round callbacks = 0;
  bool last_seen_stabilized = false;
  Round last_seen_round = 0;
  const RunResult result = run_until_stabilized(
      engine, 10000, [&](const Scheduler& e) {
        ++callbacks;
        last_seen_stabilized = proto.stabilized();
        last_seen_round = e.rounds_executed();
      });
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(callbacks, result.rounds);
  // The final callback ran AFTER the stabilizing step, on its final state.
  EXPECT_TRUE(last_seen_stabilized);
  EXPECT_EQ(last_seen_round, result.rounds);
}

TEST(Runner, PerRoundObservesMaxRoundsExhaustionRound) {
  StaticGraphProvider topo(make_star_line(8, 8));
  BlindGossip proto(BlindGossip::shuffled_uids(72, 22));
  Engine engine(topo, proto, EngineConfig{});
  Round callbacks = 0;
  Round last_seen_round = 0;
  const RunResult result = run_until_stabilized(
      engine, 5, [&](const Scheduler& e) {
        ++callbacks;
        last_seen_round = e.rounds_executed();
      });
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(callbacks, 5u);  // the exhaustion round is observed too
  EXPECT_EQ(last_seen_round, 5u);
}

TEST(Runner, PerRoundObservesCoincidentStabilizationAtCap) {
  // Stabilization in exactly the round that exhausts the cap: the observer
  // must still fire on that round and the result must report convergence.
  const auto run_with_cap = [](Round cap, Round* callbacks) {
    StaticGraphProvider topo(make_clique(5));
    BlindGossip proto(BlindGossip::shuffled_uids(5, 23));
    EngineConfig cfg;
    cfg.seed = 23;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, cap, [callbacks](const Scheduler&) {
      if (callbacks != nullptr) ++*callbacks;
    });
  };
  const RunResult free_run = run_with_cap(10000, nullptr);
  ASSERT_TRUE(free_run.converged);
  Round callbacks = 0;
  const RunResult capped = run_with_cap(free_run.rounds, &callbacks);
  EXPECT_TRUE(capped.converged);
  EXPECT_EQ(capped.rounds, free_run.rounds);
  EXPECT_EQ(callbacks, free_run.rounds);
}

TEST(Runner, PerRoundNeverFiresWhenZeroRoundsExecute) {
  StaticGraphProvider topo(Graph::empty(1));
  PushPull proto({0});
  Engine engine(topo, proto, EngineConfig{});
  Round callbacks = 0;
  const RunResult result = run_until_stabilized(
      engine, 100, [&callbacks](const Scheduler&) { ++callbacks; });
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(callbacks, 0u);
}

TEST(Runner, TrivialSingleNodeAlreadyStable) {
  StaticGraphProvider topo(Graph::empty(1));
  PushPull proto({0});
  Engine engine(topo, proto, EngineConfig{});
  const RunResult result = run_until_stabilized(engine, 100);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Runner, RejectsZeroMaxRounds) {
  StaticGraphProvider topo(make_clique(4));
  BlindGossip proto(BlindGossip::shuffled_uids(4, 4));
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_THROW(run_until_stabilized(engine, 0), ContractError);
}

TEST(RunTrials, DeterministicAndThreadInvariant) {
  auto body = [](std::uint64_t trial_seed) {
    StaticGraphProvider topo(make_clique(10));
    BlindGossip proto(BlindGossip::shuffled_uids(10, trial_seed));
    EngineConfig cfg;
    cfg.seed = trial_seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 10000);
  };
  TrialSpec serial;
  serial.controls.max_rounds = 10000;
  serial.controls.trials = 8;
  serial.controls.seed = 77;
  serial.controls.threads = 1;
  TrialSpec parallel = serial;
  parallel.controls.threads = 4;
  const auto a = run_trials(serial, body);
  const auto b = run_trials(parallel, body);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rounds, b[i].rounds) << "trial " << i;
  }
}

TEST(RunTrials, DifferentTrialsDiffer) {
  auto body = [](std::uint64_t trial_seed) {
    StaticGraphProvider topo(make_cycle(16));
    BlindGossip proto(BlindGossip::shuffled_uids(16, trial_seed));
    EngineConfig cfg;
    cfg.seed = trial_seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 100000);
  };
  TrialSpec spec;
  spec.controls.max_rounds = 100000;
  spec.controls.trials = 8;
  spec.controls.seed = 5;
  spec.controls.threads = 2;
  const auto results = run_trials(spec, body);
  bool any_differ = false;
  for (std::size_t i = 1; i < results.size(); ++i) {
    any_differ |= results[i].rounds != results[0].rounds;
  }
  EXPECT_TRUE(any_differ);
}

TEST(RoundsOf, ExtractsConvergedRounds) {
  std::vector<RunResult> results(3);
  for (std::size_t i = 0; i < 3; ++i) {
    results[i].converged = true;
    results[i].rounds = 10 * (i + 1);
  }
  const auto rounds = rounds_of(results);
  EXPECT_EQ(rounds, (std::vector<double>{10, 20, 30}));
}

TEST(RoundsOf, ThrowsOnCensoredTrial) {
  std::vector<RunResult> results(1);
  results[0].converged = false;
  EXPECT_THROW(rounds_of(results), ContractError);
}

TEST(SummarizeConvergence, SplitsConvergedFromCensored) {
  std::vector<RunResult> results(4);
  results[0].converged = true;
  results[0].rounds = 12;
  results[1].converged = false;  // censored at the cap
  results[1].rounds = 500;
  results[2].converged = true;
  results[2].rounds = 30;
  results[3].converged = false;
  const ConvergenceSummary s = summarize_convergence(results);
  EXPECT_EQ(s.converged, 2u);
  EXPECT_EQ(s.censored, 2u);
  EXPECT_EQ(s.rounds, (std::vector<double>{12, 30}));  // trial order
  EXPECT_DOUBLE_EQ(s.convergence_rate(), 0.5);
}

TEST(SummarizeConvergence, AllCensoredDoesNotThrow) {
  // The motivating case: rounds_of() throws on any censored trial; the
  // censoring-aware summary must stay usable even when nothing converged.
  std::vector<RunResult> results(2);
  EXPECT_THROW(rounds_of(results), ContractError);
  const ConvergenceSummary s = summarize_convergence(results);
  EXPECT_EQ(s.converged, 0u);
  EXPECT_EQ(s.censored, 2u);
  EXPECT_TRUE(s.rounds.empty());
  EXPECT_DOUBLE_EQ(s.convergence_rate(), 0.0);
}

TEST(SummarizeConvergence, EmptyInputIsEmpty) {
  const ConvergenceSummary s = summarize_convergence({});
  EXPECT_EQ(s.converged, 0u);
  EXPECT_EQ(s.censored, 0u);
  EXPECT_DOUBLE_EQ(s.convergence_rate(), 0.0);
}

TEST(RoundsOf, ErrorPointsAtTheCensoringAwareAlternative) {
  std::vector<RunResult> results(1);
  results[0].converged = false;
  try {
    rounds_of(results);
    FAIL() << "rounds_of must throw on censored trials";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("summarize_convergence"),
              std::string::npos);
  }
}

TEST(Runner, CancelTokenStopsBetweenRounds) {
  StaticGraphProvider topo(make_clique(16));
  BlindGossip proto(BlindGossip::shuffled_uids(16, 3));
  EngineConfig cfg;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  CancelToken deadline;
  TrialCancel cancel;
  cancel.deadline = &deadline;
  // Cancel after the second round via the per-round observer; the loop must
  // notice at the next between-round boundary and stop with a clean state.
  const RunResult result = run_until_stabilized(
      engine, 10000,
      [&](const Scheduler& e) {
        if (e.rounds_executed() == 2) deadline.cancel();
      },
      &cancel);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 2u);
  EXPECT_EQ(result.rounds, engine.rounds_executed());  // whole rounds only
}

TEST(Runner, PreCancelledTokenExecutesNoRounds) {
  StaticGraphProvider topo(make_clique(8));
  BlindGossip proto(BlindGossip::shuffled_uids(8, 5));
  EngineConfig cfg;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  CancelToken interrupt;
  interrupt.cancel();
  TrialCancel cancel;
  cancel.interrupt = &interrupt;
  const RunResult result = run_until_stabilized(engine, 10000, {}, &cancel);
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(cancel.interrupted());
  EXPECT_EQ(result.rounds, 0u);
}

TEST(TrialSeed, MatchesDeriveSeedTagForever) {
  // The derivation is shared by run_trials and SweepRunner resume; changing
  // it would silently disown every journal on disk.
  EXPECT_EQ(trial_seed(42, 7), derive_seed(42, {0x747269616cULL, 7}));
  EXPECT_NE(trial_seed(42, 7), trial_seed(42, 8));
  EXPECT_NE(trial_seed(42, 7), trial_seed(43, 7));
}

TEST(Runner, RoundsAfterLastActivation) {
  StaticGraphProvider topo(make_clique(6));
  BlindGossip proto(BlindGossip::shuffled_uids(6, 9));
  EngineConfig cfg;
  cfg.activation_rounds = {1, 1, 1, 1, 1, 4};
  cfg.seed = 9;
  Engine engine(topo, proto, cfg);
  const RunResult result = run_until_stabilized(engine, 10000);
  ASSERT_TRUE(result.converged);
  EXPECT_GE(result.rounds, 4u);
  EXPECT_EQ(result.rounds_after_last_activation, result.rounds - 3);
}

}  // namespace
}  // namespace mtm
