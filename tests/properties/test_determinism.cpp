// Determinism properties: every algorithm replays identically from its
// seeds, results are thread-count invariant, and distinct seeds decorrelate.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "harness/experiment.hpp"

namespace mtm {
namespace {

class LeaderDeterminism : public ::testing::TestWithParam<int> {};

std::vector<Round> rounds_for(LeaderAlgo algo, std::size_t threads,
                              std::uint64_t seed) {
  LeaderExperiment spec;
  spec.algo = algo;
  spec.node_count = 14;
  spec.max_degree_bound = 13;
  spec.network_size_bound = 14;
  spec.topology = static_topology(make_clique(14));
  spec.controls.max_rounds = 1u << 22;
  spec.controls.trials = 5;
  spec.controls.seed = seed;
  spec.controls.threads = threads;
  std::vector<Round> out;
  for (const RunResult& r : run_leader_experiment(spec)) {
    out.push_back(r.rounds);
  }
  return out;
}

TEST_P(LeaderDeterminism, ReplaysExactly) {
  const auto algo = static_cast<LeaderAlgo>(GetParam());
  EXPECT_EQ(rounds_for(algo, 1, 42), rounds_for(algo, 1, 42));
}

TEST_P(LeaderDeterminism, ThreadCountInvariant) {
  const auto algo = static_cast<LeaderAlgo>(GetParam());
  EXPECT_EQ(rounds_for(algo, 1, 43), rounds_for(algo, 4, 43));
}

TEST_P(LeaderDeterminism, SeedsDecorrelate) {
  const auto algo = static_cast<LeaderAlgo>(GetParam());
  EXPECT_NE(rounds_for(algo, 1, 44), rounds_for(algo, 1, 45));
}

INSTANTIATE_TEST_SUITE_P(
    Algos, LeaderDeterminism,
    ::testing::Values(static_cast<int>(LeaderAlgo::kBlindGossip),
                      static_cast<int>(LeaderAlgo::kBitConvergence),
                      static_cast<int>(LeaderAlgo::kAsyncBitConvergence),
                      static_cast<int>(LeaderAlgo::kClassicalGossip)));

class RumorDeterminism : public ::testing::TestWithParam<int> {};

std::vector<Round> rumor_rounds_for(RumorAlgo algo, std::size_t threads,
                                    std::uint64_t seed) {
  RumorExperiment spec;
  spec.algo = algo;
  spec.node_count = 14;
  spec.topology = static_topology(make_star_line(2, 6));
  spec.controls.max_rounds = 1u << 22;
  spec.controls.trials = 5;
  spec.controls.seed = seed;
  spec.controls.threads = threads;
  std::vector<Round> out;
  for (const RunResult& r : run_rumor_experiment(spec)) {
    out.push_back(r.rounds);
  }
  return out;
}

TEST_P(RumorDeterminism, ReplaysExactlyAndThreadInvariant) {
  const auto algo = static_cast<RumorAlgo>(GetParam());
  const auto baseline = rumor_rounds_for(algo, 1, 7);
  EXPECT_EQ(baseline, rumor_rounds_for(algo, 1, 7));
  EXPECT_EQ(baseline, rumor_rounds_for(algo, 4, 7));
}

INSTANTIATE_TEST_SUITE_P(
    Algos, RumorDeterminism,
    ::testing::Values(static_cast<int>(RumorAlgo::kPushPull),
                      static_cast<int>(RumorAlgo::kPpush),
                      static_cast<int>(RumorAlgo::kClassicalPushPull)));

}  // namespace
}  // namespace mtm
