// Pins the shard-stream seed derivation forever.
//
// The sharded engine derives NO new RNG streams: a shard simply owns the
// contiguous node range [lo, hi) of the canonical per-node streams
// make_node_streams(seed, n), and every order-sensitive draw happens in
// the sequential cross-shard reduction. That is the whole determinism
// argument, and it makes "same seed, any shard count" a testable property:
// the execution fingerprint below must be identical for every value of
// intra_round_threads, including 0 (auto = one shard per hardware thread,
// whatever the host has).
//
// The literal fingerprints at the bottom pin the derivation across
// refactors, the same way test_rng.cpp pins the raw stream values and
// test_runner.cpp pins trial_seed. If a change to the engine or RNG layout
// flips one of these constants, every archived BENCH/RESULTS artifact
// stops being reproducible — bump them only with a changelog entry saying
// so.
#include <gtest/gtest.h>

#include <cstdint>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/dynamic_graph.hpp"
#include "sim/engine.hpp"

namespace mtm {
namespace {

constexpr NodeId kNodes = 96;
constexpr Round kRounds = 48;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Folds every observable of a short BlindGossip execution — total and
/// per-round telemetry plus the final leader map — into one word.
std::uint64_t execution_fingerprint(std::uint64_t seed, std::size_t threads) {
  Rng graph_rng(seed ^ 0x717e5ULL);
  StaticGraphProvider topology(make_random_regular(kNodes, 6, graph_rng));
  BlindGossip protocol(BlindGossip::shuffled_uids(kNodes, seed));

  EngineConfig config;
  config.seed = seed;
  config.connection_failure_prob = 0.1;
  config.record_rounds = true;
  config.intra_round_threads = threads;
  Engine engine(topology, protocol, config);
  engine.run_rounds(kRounds);

  const Telemetry& t = engine.telemetry();
  std::uint64_t h = 0;
  h = mix(h, t.proposals());
  h = mix(h, t.connections());
  h = mix(h, t.failed_connections());
  h = mix(h, t.wasted_rounds());
  h = mix(h, t.payload_uids());
  for (const RoundStats& rs : t.per_round()) {
    h = mix(h, rs.proposals);
    h = mix(h, rs.connections);
    h = mix(h, rs.dropped);
  }
  for (NodeId u = 0; u < kNodes; ++u) h = mix(h, protocol.leader_of(u));
  return h;
}

TEST(ShardDeterminism, FingerprintInvariantAcrossShardCounts) {
  const std::uint64_t want = execution_fingerprint(0x5eedULL, 1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                              std::size_t{8}, std::size_t{16},
                              std::size_t{0}}) {
    EXPECT_EQ(execution_fingerprint(0x5eedULL, threads), want)
        << "threads=" << threads;
  }
}

TEST(ShardDeterminism, DistinctSeedsDiverge) {
  // Sanity that the fingerprint actually has resolution.
  EXPECT_NE(execution_fingerprint(0x5eedULL, 1),
            execution_fingerprint(0x5eedULL + 1, 1));
}

TEST(ShardDeterminism, PinnedFingerprints) {
  // PINNED: the shard-stream derivation contract. See the file comment
  // before touching these literals.
  EXPECT_EQ(execution_fingerprint(0x5eedULL, 4), 0xc31c5384e92268b2ULL);
  EXPECT_EQ(execution_fingerprint(1, 4), 0x715968cb595c1005ULL);
}

}  // namespace
}  // namespace mtm
