// Property tests of the mobile telephone model invariants (paper Section
// III), checked over randomized executions of real protocols:
//   * each node participates in at most ONE connection per round;
//   * connections exist only along edges of the current-round topology;
//   * a node that sent a proposal never accepts one;
//   * payload caps are respected (enforced structurally by Payload, checked
//     here end-to-end via telemetry arithmetic).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/ppush.hpp"
#include "sim/engine.hpp"

namespace mtm {
namespace {

/// Wraps a protocol and records, per round, the set of connection partners
/// each node saw (via receive_payload callbacks).
class ConnectionAuditor : public Protocol {
 public:
  explicit ConnectionAuditor(Protocol& inner, DynamicGraphProvider& topo)
      : inner_(inner), topo_(&topo) {}

  std::string name() const override { return "audit(" + inner_.name() + ")"; }
  void init(NodeId n, std::span<Rng> rngs) override {
    node_count_ = n;
    inner_.init(n, rngs);
  }
  Tag advertise(NodeId u, Round r, Rng& rng) override {
    if (r > current_round_) {
      // New round (node-local == global in these tests): check and reset.
      check_round();
      current_round_ = r;
    }
    return inner_.advertise(u, r, rng);
  }
  Decision decide(NodeId u, Round r, std::span<const NeighborInfo> view,
                  Rng& rng) override {
    const Decision d = inner_.decide(u, r, view, rng);
    if (d.is_send()) senders_.insert(u);
    return d;
  }
  Payload make_payload(NodeId u, NodeId peer, Round r) override {
    return inner_.make_payload(u, peer, r);
  }
  void receive_payload(NodeId u, NodeId peer, const Payload& p,
                       Round r) override {
    partners_[u].push_back(peer);
    // Connection only along a current edge.
    EXPECT_TRUE(topo_->graph_at(current_round_).has_edge(u, peer))
        << "connection off-topology in round " << current_round_;
    inner_.receive_payload(u, peer, p, r);
  }
  bool stabilized() const override { return inner_.stabilized(); }

  void check_round() {
    for (const auto& [u, peers] : partners_) {
      // One connection means exactly one payload received (from that peer).
      EXPECT_LE(peers.size(), 1u)
          << "node " << u << " joined " << peers.size()
          << " connections in round " << current_round_;
      if (!peers.empty()) {
        // A node that proposed may connect only as the (accepted) sender —
        // it must not ALSO have accepted someone: with one partner recorded
        // this holds; receivers must not be senders of this round unless
        // they are the accepted sender of exactly this connection.
        (void)u;
      }
    }
    partners_.clear();
    senders_.clear();
  }

  NodeId node_count_ = 0;
  Round current_round_ = 0;
  std::map<NodeId, std::vector<NodeId>> partners_;
  std::set<NodeId> senders_;

 private:
  Protocol& inner_;
  DynamicGraphProvider* topo_;
};

class EngineInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineInvariants, BlindGossipOnStaticClique) {
  StaticGraphProvider topo(make_clique(12));
  BlindGossip inner(BlindGossip::shuffled_uids(12, GetParam()));
  ConnectionAuditor audit(inner, topo);
  EngineConfig cfg;
  cfg.seed = GetParam();
  Engine engine(topo, audit, cfg);
  engine.run_rounds(60);
  audit.check_round();
}

TEST_P(EngineInvariants, BlindGossipOnChangingTopology) {
  Rng gen(GetParam());
  RelabelingGraphProvider topo(make_random_regular(14, 4, gen), 1,
                               GetParam());
  BlindGossip inner(BlindGossip::shuffled_uids(14, GetParam()));
  ConnectionAuditor audit(inner, topo);
  EngineConfig cfg;
  cfg.seed = GetParam() + 1;
  Engine engine(topo, audit, cfg);
  engine.run_rounds(60);
  audit.check_round();
}

TEST_P(EngineInvariants, PpushOnStarLine) {
  StaticGraphProvider topo(make_star_line(3, 4));
  Ppush inner({0});
  ConnectionAuditor audit(inner, topo);
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = GetParam();
  Engine engine(topo, audit, cfg);
  engine.run_rounds(80);
  audit.check_round();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(EngineInvariantsGlobal, ConnectionsNeverExceedHalfNodes) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    StaticGraphProvider topo(make_clique(9));
    BlindGossip proto(BlindGossip::shuffled_uids(9, seed));
    EngineConfig cfg;
    cfg.seed = seed;
    cfg.record_rounds = true;
    Engine engine(topo, proto, cfg);
    engine.run_rounds(40);
    for (const RoundStats& rs : engine.telemetry().per_round()) {
      EXPECT_LE(rs.connections, 4u);
      EXPECT_LE(rs.connections, rs.proposals);
    }
  }
}

TEST(EngineInvariantsGlobal, PayloadUidAccountingMatchesConnections) {
  // Blind gossip sends exactly one UID per payload, two payloads per
  // connection: payload_uids == 2 * connections.
  StaticGraphProvider topo(make_cycle(10));
  BlindGossip proto(BlindGossip::shuffled_uids(10, 4));
  EngineConfig cfg;
  cfg.seed = 4;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(100);
  EXPECT_EQ(engine.telemetry().payload_uids(),
            2 * engine.telemetry().connections());
}

}  // namespace
}  // namespace mtm
