// Parameterized convergence property suite: every leader-election algorithm
// must stabilize to the global minimum on every topology family, static or
// changing, and every rumor algorithm must inform everyone. These are the
// probability-1 correctness guarantees of paper Section IV, swept across
// (algorithm × family × seed).
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "sim/mobility.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

struct ConvergenceCase {
  const char* topology;
  Round tau;  // 0 = static
};

Graph build_topology(const std::string& name) {
  if (name == "clique") return make_clique(12);
  if (name == "cycle") return make_cycle(12);
  if (name == "star") return make_star(12);
  if (name == "star-line") return make_star_line(3, 3);
  if (name == "grid") return make_grid(3, 4);
  if (name == "binary-tree") return make_binary_tree(12);
  if (name == "barbell") return make_barbell(5, 2);
  if (name == "random-regular") {
    Rng rng(55);
    return make_random_regular(12, 4, rng);
  }
  ADD_FAILURE() << "unknown topology " << name;
  return make_clique(2);
}

class LeaderConvergence
    : public ::testing::TestWithParam<std::tuple<int, const char*, Round>> {};

TEST_P(LeaderConvergence, StabilizesToGlobalMinimum) {
  const auto [algo_index, topo_name, tau] = GetParam();
  const auto algo = static_cast<LeaderAlgo>(algo_index);
  Graph g = build_topology(topo_name);
  const NodeId n = g.node_count();

  LeaderExperiment spec;
  spec.algo = algo;
  spec.node_count = n;
  spec.max_degree_bound = g.max_degree();
  spec.network_size_bound = n;
  spec.topology = tau == 0 ? static_topology(std::move(g))
                           : relabeling_topology(std::move(g), tau);
  spec.controls.max_rounds = 3000000;
  spec.controls.trials = 4;
  spec.controls.seed = 0xc0ffee;
  spec.controls.threads = 4;
  const auto results = run_leader_experiment(spec);
  for (const RunResult& r : results) {
    EXPECT_TRUE(r.converged) << leader_algo_name(algo) << " on " << topo_name
                             << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StaticTopologies, LeaderConvergence,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(LeaderAlgo::kBlindGossip),
                          static_cast<int>(LeaderAlgo::kBitConvergence),
                          static_cast<int>(LeaderAlgo::kAsyncBitConvergence),
                          static_cast<int>(LeaderAlgo::kClassicalGossip)),
        ::testing::Values("clique", "cycle", "star", "star-line", "grid",
                          "binary-tree", "barbell", "random-regular"),
        ::testing::Values(Round{0})));

INSTANTIATE_TEST_SUITE_P(
    ChangingTopologies, LeaderConvergence,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(LeaderAlgo::kBlindGossip),
                          static_cast<int>(LeaderAlgo::kBitConvergence),
                          static_cast<int>(LeaderAlgo::kAsyncBitConvergence)),
        ::testing::Values("clique", "star-line", "random-regular"),
        ::testing::Values(Round{1}, Round{4})));

class RumorConvergence
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(RumorConvergence, InformsEveryone) {
  const auto [algo_index, topo_name] = GetParam();
  const auto algo = static_cast<RumorAlgo>(algo_index);
  Graph g = build_topology(topo_name);
  RumorExperiment spec;
  spec.algo = algo;
  spec.node_count = g.node_count();
  spec.topology = static_topology(std::move(g));
  spec.controls.max_rounds = 2000000;
  spec.controls.trials = 4;
  spec.controls.seed = 0xfeed;
  spec.controls.threads = 4;
  const auto results = run_rumor_experiment(spec);
  for (const RunResult& r : results) {
    EXPECT_TRUE(r.converged) << rumor_algo_name(algo) << " on " << topo_name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, RumorConvergence,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(RumorAlgo::kPushPull),
                          static_cast<int>(RumorAlgo::kPpush),
                          static_cast<int>(RumorAlgo::kClassicalPushPull)),
        ::testing::Values("clique", "cycle", "star", "star-line", "grid",
                          "random-regular")));

TEST(ConvergenceEdgeCases, TwoNodePath) {
  for (int algo_index = 0; algo_index < 4; ++algo_index) {
    LeaderExperiment spec;
    spec.algo = static_cast<LeaderAlgo>(algo_index);
    spec.node_count = 2;
    spec.topology = static_topology(make_path(2));
    spec.controls.max_rounds = 100000;
    spec.controls.trials = 3;
    spec.controls.seed = 3;
    const auto results = run_leader_experiment(spec);
    for (const RunResult& r : results) {
      EXPECT_TRUE(r.converged)
          << leader_algo_name(static_cast<LeaderAlgo>(algo_index));
    }
  }
}

TEST(ConvergenceEdgeCases, MobilityTopology) {
  // Leader election over the random-waypoint mobility substrate.
  LeaderExperiment spec;
  spec.algo = LeaderAlgo::kBlindGossip;
  spec.node_count = 24;
  spec.topology = [](std::uint64_t seed) {
    MobilityConfig cfg;
    cfg.node_count = 24;
    cfg.radius = 0.3;
    cfg.speed = 0.05;
    cfg.tau = 2;
    cfg.seed = seed;
    return std::make_unique<MobilityGraphProvider>(cfg);
  };
  spec.controls.max_rounds = 1000000;
  spec.controls.trials = 3;
  spec.controls.seed = 5;
  const auto results = run_leader_experiment(spec);
  for (const RunResult& r : results) EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace mtm
