// Property fuzz for the Payload bit/uid codec: random interleavings of
// push_uid / push_bits must read back exactly, and cap violations must be
// rejected at the exact boundary.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "sim/model.hpp"

namespace mtm {
namespace {

class PayloadFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PayloadFuzz, RandomRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int iteration = 0; iteration < 200; ++iteration) {
    Payload p;
    std::vector<Uid> uids;
    std::vector<std::pair<std::uint64_t, int>> fields;
    int bits_used = 0;
    // Random interleaving of pushes within the caps.
    for (int op = 0; op < 8; ++op) {
      if (rng.coin() && uids.size() < Payload::kMaxUids) {
        const Uid uid = rng.next_u64();
        p.push_uid(uid);
        uids.push_back(uid);
      } else {
        const int width = 1 + static_cast<int>(rng.uniform(64));
        if (bits_used + width > Payload::kMaxExtraBits) continue;
        const std::uint64_t value =
            width == 64 ? rng.next_u64()
                        : rng.uniform(std::uint64_t{1} << width);
        p.push_bits(value, width);
        fields.emplace_back(value, width);
        bits_used += width;
      }
    }
    // Read everything back.
    ASSERT_EQ(p.uid_count(), uids.size());
    for (std::size_t i = 0; i < uids.size(); ++i) {
      EXPECT_EQ(p.uid(i), uids[i]);
    }
    ASSERT_EQ(p.extra_bit_count(), bits_used);
    int offset = 0;
    for (const auto& [value, width] : fields) {
      EXPECT_EQ(p.read_bits(offset, width), value);
      offset += width;
    }
  }
}

TEST_P(PayloadFuzz, ArbitraryOffsetReadsAreConsistent) {
  // Fill the full 128 bits with a known pattern, then read random windows
  // and check against an independently computed reference.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 777);
  const std::uint64_t lo = rng.next_u64();
  const std::uint64_t hi = rng.next_u64();
  Payload p;
  p.push_bits(lo, 64);
  p.push_bits(hi, 64);
  auto reference_bit = [&](int pos) -> std::uint64_t {
    return pos < 64 ? (lo >> pos) & 1u : (hi >> (pos - 64)) & 1u;
  };
  for (int trial = 0; trial < 100; ++trial) {
    const int width = 1 + static_cast<int>(rng.uniform(64));
    const int offset = static_cast<int>(rng.uniform(
        static_cast<std::uint64_t>(Payload::kMaxExtraBits - width) + 1));
    std::uint64_t expected = 0;
    for (int i = 0; i < width; ++i) {
      expected |= reference_bit(offset + i) << i;
    }
    EXPECT_EQ(p.read_bits(offset, width), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PayloadFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace mtm
