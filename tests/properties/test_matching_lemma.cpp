// Property tests for Lemma V.1 (from [1]): for every graph G with vertex
// expansion α, γ = min over |S| <= n/2 of ν(B(S))/|S| satisfies γ >= α/4.
//
// We verify the inequality EXACTLY (exhaustive subsets) on small instances of
// every generator family and on random graphs, and verify the corollary
// Lemma VI.3 form (|M| >= |Q|·α/4 for each cut) on sampled cuts of larger
// graphs using the sampled α upper bound (which only makes the test
// stricter: ν/|S| >= α_true/4 and α_true <= α_upper is checked via exact
// small cases; for large cases we check ν/|S| >= α_sampled/4 where
// α_sampled >= α_true would be wrong — so there we recompute α(S) per cut).
#include <gtest/gtest.h>

#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "graph/matching.hpp"

namespace mtm {
namespace {

void expect_lemma_exact(const Graph& g, const std::string& label) {
  const double alpha = vertex_expansion_exact(g);
  const double gamma = gamma_exact(g);
  EXPECT_GE(gamma + 1e-12, alpha / 4.0) << label;
}

TEST(MatchingLemma, ExactOnFamilies) {
  expect_lemma_exact(make_clique(10), "clique-10");
  expect_lemma_exact(make_path(12), "path-12");
  expect_lemma_exact(make_cycle(12), "cycle-12");
  expect_lemma_exact(make_star(12), "star-12");
  expect_lemma_exact(make_star_line(3, 3), "star-line-3x3");
  expect_lemma_exact(make_grid(3, 4), "grid-3x4");
  expect_lemma_exact(make_hypercube(3), "hypercube-3");
  expect_lemma_exact(make_binary_tree(12), "binary-tree-12");
  expect_lemma_exact(make_barbell(5), "barbell-5");
  expect_lemma_exact(make_complete_bipartite(4, 6), "K4,6");
}

class MatchingLemmaRandom : public ::testing::TestWithParam<int> {};

TEST_P(MatchingLemmaRandom, HoldsOnRandomConnectedGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const NodeId n = static_cast<NodeId>(8 + rng.uniform(7));  // 8..14
  const double p = 0.2 + 0.5 * rng.uniform_double();
  const Graph g = make_erdos_renyi_connected(n, p, rng);
  expect_lemma_exact(g, "random seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingLemmaRandom,
                         ::testing::Range(0, 40));

class MatchingLemmaRegular : public ::testing::TestWithParam<int> {};

TEST_P(MatchingLemmaRegular, HoldsOnRandomRegular) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Graph g = make_random_regular(12, 3 + 2 * (GetParam() % 2), rng);
  expect_lemma_exact(g, "regular seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingLemmaRegular,
                         ::testing::Range(0, 20));

TEST(MatchingLemma, PerCutFormOnLargerGraphs) {
  // Lemma VI.3 form on graphs too large for exhaustive subsets: for sampled
  // cuts S, ν(B(S)) >= |S| · α(S)/4 is implied trivially only when
  // α(S) = |∂S|/|S|... note ν(B(S)) >= |S|·α/4 needs global α; instead we
  // check the weaker per-cut statement ν(B(S)) >= |∂S|/4 — every boundary
  // node contributes an edge into S, and a maximum matching must cover at
  // least |∂S|/Δ... in fact König-type arguments give ν(B(S)) >= |∂S|/2 is
  // false in general, but ν(B(S)) >= 1 whenever ∂S nonempty and our exact
  // small-graph suite covers the real lemma. Here we sanity check that
  // matchings across BFS cuts are never zero on connected graphs.
  Rng rng(77);
  const Graph g = make_random_regular(64, 4, rng);
  for (NodeId size : {1u, 4u, 16u, 32u}) {
    std::vector<bool> in_s(g.node_count(), false);
    // BFS-ball of `size` nodes around node 0 (connected set).
    std::vector<NodeId> order{0};
    std::vector<bool> seen(g.node_count(), false);
    seen[0] = true;
    for (std::size_t i = 0; i < order.size() && order.size() < size; ++i) {
      for (NodeId v : g.neighbors(order[i])) {
        if (!seen[v] && order.size() < size) {
          seen[v] = true;
          order.push_back(v);
        }
      }
    }
    for (NodeId u : order) in_s[u] = true;
    EXPECT_GE(cut_matching_size(g, in_s), 1u);
    // With α >= 0.5 believed for random 4-regular graphs, the lemma demands
    // ν >= |S|/8; check it on these structured cuts.
    EXPECT_GE(cut_matching_size(g, in_s) * 8, order.size());
  }
}

TEST(MatchingLemma, GammaSandwichedBetweenAlphaQuarterAndAlpha) {
  // For every S, ν(B(S)) <= |∂S| (a matching saturates distinct boundary
  // nodes), so γ <= α always; Lemma V.1 gives the other side, γ >= α/4.
  // Verify the full sandwich exactly on a spread of topologies.
  for (const auto& [g, label] :
       std::vector<std::pair<Graph, const char*>>{
           {make_complete_bipartite(2, 5), "K2,5"},
           {make_star(11), "star-11"},
           {make_star_line(4, 2), "star-line-4x2"},
           {make_barbell(4, 2), "barbell-4+2"},
           {make_grid(2, 6), "grid-2x6"}}) {
    const double alpha = vertex_expansion_exact(g);
    const double gamma = gamma_exact(g);
    EXPECT_LE(gamma, alpha + 1e-12) << label;
    EXPECT_GE(gamma + 1e-12, alpha / 4.0) << label;
  }
}

}  // namespace
}  // namespace mtm
