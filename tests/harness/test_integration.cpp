// End-to-end integration tests that exercise the whole stack the way the
// benchmark binaries do: topology generator -> dynamic provider -> engine ->
// protocol -> Monte-Carlo harness -> statistics, checking the paper's
// QUALITATIVE claims on miniature instances (the benches do the full-size
// versions).
#include <gtest/gtest.h>

#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/predictions.hpp"
#include "harness/sweep.hpp"
#include "protocols/ppush.hpp"

namespace mtm {
namespace {

double mean_rounds(LeaderAlgo algo, Graph g, Round tau, std::size_t trials,
                   std::uint64_t seed) {
  LeaderExperiment spec;
  spec.algo = algo;
  spec.node_count = g.node_count();
  spec.max_degree_bound = g.max_degree();
  spec.network_size_bound = g.node_count();
  spec.topology = tau == 0 ? static_topology(std::move(g))
                           : relabeling_topology(std::move(g), tau);
  spec.controls.max_rounds = 5000000;
  spec.controls.trials = trials;
  spec.controls.seed = seed;
  spec.controls.threads = 4;
  return measure_leader(spec).mean;
}

TEST(Integration, BlindGossipSlowerOnStarLineThanClique) {
  // Same n: the star-line (low α, Δ ≈ √n bottleneck) must be far slower
  // than the clique for blind gossip — the heart of Theorem VI.1's topology
  // dependence.
  const double clique = mean_rounds(LeaderAlgo::kBlindGossip,
                                    make_clique(30), 0, 6, 1);
  const double star_line = mean_rounds(LeaderAlgo::kBlindGossip,
                                       make_star_line(5, 5), 0, 6, 1);
  EXPECT_GT(star_line, 3.0 * clique);
}

TEST(Integration, BitConvergenceBeatsBlindGossipOnStableStarLine) {
  // Section VII's headline: with b = 1 and a stable graph (τ >= log Δ),
  // bit convergence beats blind gossip on bottlenecked topologies. The
  // advantage is asymptotic (bit convergence carries large polylog phase
  // constants), so the instance must be big enough for Δ² to dominate.
  const Graph g = make_star_line(6, 32);  // n = 198, Δ = 34
  const double blind = mean_rounds(LeaderAlgo::kBlindGossip, g, 0, 5, 2);
  const double bits = mean_rounds(LeaderAlgo::kBitConvergence, g, 0, 5, 2);
  EXPECT_LT(bits, blind);
}

TEST(Integration, PpushShortTermProgressAcrossMatchedCut) {
  // Miniature Theorem V.2 check: K_{m,m} has an m-matching across the
  // informed/uninformed cut; within a handful of stable rounds PPUSH must
  // inform a constant fraction of the uninformed side (the theorem
  // guarantees m/f(r); on the complete bipartite graph the realized rate is
  // the balls-into-bins constant ≈ 1 - 1/e per round).
  const NodeId m = 32;
  std::vector<NodeId> sources(m);
  for (NodeId u = 0; u < m; ++u) sources[u] = u;
  int successes = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    StaticGraphProvider topo(make_complete_bipartite(m, m));
    Ppush proto(sources);
    EngineConfig cfg;
    cfg.tag_bits = 1;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    engine.run_rounds(3);
    if (proto.informed_count() >= m + m / 2) ++successes;
  }
  EXPECT_GE(successes, 8);  // w.h.p. every trial; allow rare stragglers
}

TEST(Integration, RumorOrderingOnStar) {
  // classical <= ppush <= push-pull on the star (the center bottleneck is
  // the paper's motivating separation).
  auto rumor_mean = [](RumorAlgo algo, std::uint64_t seed) {
    RumorExperiment spec;
    spec.algo = algo;
    spec.node_count = 24;
    spec.topology = static_topology(make_star(24));
    spec.controls.max_rounds = 1000000;
    spec.controls.trials = 6;
    spec.controls.seed = seed;
    spec.controls.threads = 4;
    return measure_rumor(spec).mean;
  };
  const double classical = rumor_mean(RumorAlgo::kClassicalPushPull, 4);
  const double ppush = rumor_mean(RumorAlgo::kPpush, 4);
  const double push_pull = rumor_mean(RumorAlgo::kPushPull, 4);
  EXPECT_LT(classical, ppush);
  EXPECT_LT(ppush, push_pull);
}

TEST(Integration, ScalingSeriesEndToEnd) {
  // Build a real miniature scaling series (clique blind gossip) and check
  // the plumbing: positive exponent fit, sane ratio diagnostics.
  ScalingSeries series("integration-clique", "n");
  for (NodeId n : {8u, 16u, 32u}) {
    SeriesPoint point;
    point.x = n;
    LeaderExperiment spec;
    spec.algo = LeaderAlgo::kBlindGossip;
    spec.node_count = n;
    spec.topology = static_topology(make_clique(n));
    spec.controls.max_rounds = 1000000;
    spec.controls.trials = 6;
    spec.controls.seed = n;
    spec.controls.threads = 4;
    point.measured = measure_leader(spec);
    point.predicted =
        blind_gossip_bound(n, family_alpha(GraphFamily::kClique, n), n - 1);
    series.add(point);
  }
  EXPECT_EQ(series.points().size(), 3u);
  EXPECT_GT(series.mean_ratio(), 0.0);
  // Clique blind gossip grows with n (more nodes to infect, epidemic-style).
  EXPECT_GT(series.measured_exponent().slope, 0.0);
}

TEST(Integration, AsyncActivationMeasuredFromLastStart) {
  LeaderExperiment spec;
  spec.algo = LeaderAlgo::kAsyncBitConvergence;
  spec.node_count = 8;
  spec.topology = static_topology(make_clique(8));
  spec.controls.max_rounds = 1000000;
  spec.controls.trials = 4;
  spec.controls.seed = 6;
  spec.activation_rounds = {1, 50, 10, 30, 20, 40, 5, 15};
  const auto results = run_leader_experiment(spec);
  for (const RunResult& r : results) {
    ASSERT_TRUE(r.converged);
    EXPECT_GE(r.rounds, 50u);
    EXPECT_EQ(r.rounds_after_last_activation, r.rounds - 49);
  }
}

}  // namespace
}  // namespace mtm
