#include "harness/predictions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/assert.hpp"

namespace mtm {
namespace {

TEST(Predictions, SafeLog2) {
  EXPECT_DOUBLE_EQ(safe_log2(1.0), 1.0);  // floored at 1
  EXPECT_DOUBLE_EQ(safe_log2(2.0), 1.0);
  EXPECT_DOUBLE_EQ(safe_log2(1024.0), 10.0);
  EXPECT_THROW(safe_log2(0.5), ContractError);
}

TEST(Predictions, TauHatCapsAtLogDelta) {
  // Δ = 16 -> log Δ = 4.
  EXPECT_DOUBLE_EQ(tau_hat(1, 16), 1.0);
  EXPECT_DOUBLE_EQ(tau_hat(3, 16), 3.0);
  EXPECT_DOUBLE_EQ(tau_hat(4, 16), 4.0);
  EXPECT_DOUBLE_EQ(tau_hat(100, 16), 4.0);
  // Δ = 1 or 2 -> log Δ floored at 1.
  EXPECT_DOUBLE_EQ(tau_hat(5, 2), 1.0);
}

TEST(Predictions, PpushFShape) {
  // f(r) = Δ^{1/r}·r·log n: decreasing then increasing in r; f(1) = Δ log n.
  const NodeId delta = 64, n = 1024;
  EXPECT_DOUBLE_EQ(ppush_f(1, delta, n), 64.0 * 10.0);
  EXPECT_LT(ppush_f(3, delta, n), ppush_f(1, delta, n));
  EXPECT_DOUBLE_EQ(ppush_f(6, delta, n), 2.0 * 6.0 * 10.0);  // Δ^{1/6} = 2
}

TEST(Predictions, BlindGossipBoundComponents) {
  // (1/α)·Δ²·log²n with n = 1024, α = 0.5, Δ = 32.
  EXPECT_DOUBLE_EQ(blind_gossip_bound(1024, 0.5, 32),
                   2.0 * 32.0 * 32.0 * 100.0);
  EXPECT_THROW(blind_gossip_bound(10, 0.0, 2), ContractError);
}

TEST(Predictions, LowerBoundShape) {
  EXPECT_DOUBLE_EQ(blind_gossip_lower_bound(10, 0.25), 200.0);
}

TEST(Predictions, BitConvergenceBoundShapeInTau) {
  // Δ^{1/τ}·τ decreases steeply from τ = 1, reaches its minimum near
  // τ = ln Δ, wiggles by at most a constant after, and flattens exactly at
  // τ = log₂ Δ (τ̂ caps there). For Δ = 64 (log₂ Δ = 6, ln Δ ≈ 4.16):
  const NodeId n = 4096, delta = 64;
  const double alpha = 1.0;
  // Steep initial decrease (τ = 1 → 4).
  double prev = bit_convergence_bound(n, alpha, delta, 1);
  for (Round tau = 2; tau <= 4; ++tau) {
    const double cur = bit_convergence_bound(n, alpha, delta, tau);
    EXPECT_LT(cur, prev) << "tau " << tau;
    prev = cur;
  }
  // Every τ >= 2 beats τ = 1 by a wide margin (the paper's headline gap).
  const double at_tau1 = bit_convergence_bound(n, alpha, delta, 1);
  for (Round tau = 2; tau <= 12; ++tau) {
    EXPECT_LT(bit_convergence_bound(n, alpha, delta, tau), at_tau1 / 2.0);
  }
  // Flat beyond log₂ Δ.
  EXPECT_DOUBLE_EQ(bit_convergence_bound(n, alpha, delta, 6),
                   bit_convergence_bound(n, alpha, delta, 600));
}

TEST(Predictions, BitConvergenceBeatsBlindGossip) {
  // The paper's headline gap: for τ = 1 the advantage is ~Δ, for
  // τ = log Δ it is ~Δ² (ignoring log factors). Check the ratio grows.
  const NodeId n = 1 << 16, delta = 256;
  const double alpha = 0.5;
  const double blind = blind_gossip_bound(n, alpha, delta);
  const double bc_tau1 = bit_convergence_bound(n, alpha, delta, 1);
  const double bc_tau8 = bit_convergence_bound(n, alpha, delta, 8);
  EXPECT_GT(blind / bc_tau1, 0.0);
  EXPECT_GT(blind / bc_tau8, blind / bc_tau1);  // gap grows with tau
  // Ratio of ratios ≈ Δ^{1 - 1/logΔ}/logΔ: substantial for Δ = 256.
  EXPECT_GT((blind / bc_tau8) / (blind / bc_tau1), 8.0);
}

TEST(Predictions, AsyncSlowerByPolylogOnly) {
  const NodeId n = 4096, delta = 64;
  const double sync_bound = bit_convergence_bound(n, 1.0, delta, 4);
  const double async_bound = async_bit_convergence_bound(n, 1.0, delta, 4);
  const double log_n = safe_log2(n);
  EXPECT_DOUBLE_EQ(async_bound, sync_bound * log_n * log_n * log_n);
}

TEST(Predictions, ClassicalPushPullBound) {
  EXPECT_DOUBLE_EQ(classical_push_pull_bound(1024, 0.5), 200.0);
}

}  // namespace
}  // namespace mtm
