// Storage abstraction: PosixStorage round-trips, FaultyStorage's seeded
// fault taxonomy (torn writes, ENOSPC budgets, EIO, fsyncgate poisoning),
// crash-point materialization (including the rename-before-dir-fsync
// window), unique temp names, orphan-temp cleanup, and the fsync-policy
// parser.
#include "harness/storage.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <set>
#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace mtm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// Probability high enough that a seeded Bernoulli draw effectively always
// fires, but still strictly < 1 (the documented domain).
constexpr double kAlways = 0.999999999999;

TEST(PosixStorage, AppendFsyncCloseRoundTrip) {
  const std::string path = temp_path("posix_roundtrip.txt");
  Storage& storage = default_storage();
  {
    auto file = storage.open(path, Storage::OpenMode::kTruncate);
    file->append("hello ");
    file->append("world");
    file->fsync();
    file->close();
  }
  EXPECT_TRUE(storage.exists(path));
  EXPECT_EQ(storage.file_size(path), 11u);
  EXPECT_EQ(storage.read_file(path), "hello world");
  {
    auto file = storage.open(path, Storage::OpenMode::kAppend);
    file->append("!");
    file->close();
  }
  EXPECT_EQ(storage.read_file(path), "hello world!");
  storage.truncate(path, 5);
  EXPECT_EQ(storage.read_file(path), "hello");
  storage.remove(path);
  EXPECT_FALSE(storage.exists(path));
}

TEST(PosixStorage, RenameReplacesTargetAndListDirSeesIt) {
  Storage& storage = default_storage();
  const std::string from = temp_path("posix_rename_from.txt");
  const std::string to = temp_path("posix_rename_to.txt");
  storage.open(from, Storage::OpenMode::kTruncate)->append("new");
  storage.open(to, Storage::OpenMode::kTruncate)->append("old");
  storage.rename(from, to);
  EXPECT_FALSE(storage.exists(from));
  EXPECT_EQ(storage.read_file(to), "new");
  storage.sync_dir(to);  // best-effort; must not throw on a real fs
  const std::vector<std::string> names = storage.list_dir(parent_dir_of(to));
  EXPECT_NE(std::find(names.begin(), names.end(), base_name_of(to)),
            names.end());
  storage.remove(to);
}

TEST(PosixStorage, MissingFileFailuresCarryPathAndErrno) {
  Storage& storage = default_storage();
  const std::string path = temp_path("posix_missing_dir/nope.txt");
  try {
    storage.read_file(path);
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  EXPECT_THROW(storage.open(path, Storage::OpenMode::kAppend), StorageError);
}

TEST(PosixStorage, CountsMetricsWhenWired) {
  obs::MetricRegistry metrics;
  PosixStorage storage(&metrics);
  const std::string path = temp_path("posix_metrics.txt");
  auto file = storage.open(path, Storage::OpenMode::kTruncate);
  file->append("abcd");
  file->fsync();
  file->close();
  EXPECT_EQ(metrics.counter("storage.appends").value(), 1u);
  EXPECT_EQ(metrics.counter("storage.append_bytes").value(), 4u);
  EXPECT_EQ(metrics.counter("storage.fsyncs").value(), 1u);
  storage.remove(path);
}

TEST(MakeTempPath, NamesAreUniqueAndPrefixed) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    const std::string tmp = make_temp_path("/x/journal.jsonl");
    EXPECT_EQ(tmp.rfind("/x/journal.jsonl.tmp.", 0), 0u) << tmp;
    EXPECT_TRUE(seen.insert(tmp).second) << "duplicate temp name " << tmp;
  }
}

TEST(FaultyStorage, TransparentPassThroughCountsOps) {
  StorageFaultConfig config;  // all-zero: no faults
  FaultyStorage storage(default_storage(), config);
  const std::string path = temp_path("faulty_passthrough.txt");
  auto file = storage.open(path, Storage::OpenMode::kTruncate);  // op 1
  file->append("payload");                                       // op 2
  file->fsync();                                                 // op 3
  file->close();                                                 // not an op
  EXPECT_EQ(storage.read_file(path), "payload");                 // not an op
  EXPECT_EQ(storage.op_count(), 3u);
  EXPECT_FALSE(storage.crashed());
  storage.remove(path);  // op 4
  EXPECT_EQ(storage.op_count(), 4u);
}

TEST(FaultyStorage, TornWriteLeavesStrictPrefixAndThrowsEio) {
  obs::MetricRegistry metrics;
  StorageFaultConfig config;
  config.torn_write = kAlways;
  config.seed = 7;
  FaultyStorage storage(default_storage(), config, &metrics);
  const std::string path = temp_path("faulty_torn.txt");
  auto file = storage.open(path, Storage::OpenMode::kTruncate);
  const std::string payload = "0123456789abcdef";
  try {
    file->append(payload);
    FAIL() << "expected torn-write StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  file->close();
  // A strict prefix reached the backend — never the full payload.
  const std::string on_disk = default_storage().read_file(path);
  EXPECT_LT(on_disk.size(), payload.size());
  EXPECT_EQ(on_disk, payload.substr(0, on_disk.size()));
  EXPECT_EQ(metrics.counter("storage.torn_writes").value(), 1u);
  default_storage().remove(path);
}

TEST(FaultyStorage, EnospcBudgetFillsTheDiskThenFails) {
  obs::MetricRegistry metrics;
  StorageFaultConfig config;
  config.enospc_after = 10;  // bytes
  FaultyStorage storage(default_storage(), config, &metrics);
  const std::string path = temp_path("faulty_enospc.txt");
  auto file = storage.open(path, Storage::OpenMode::kTruncate);
  file->append("123456");  // 6 bytes, fits
  try {
    file->append("789abcdef");  // 9 more: only 4 fit, then ENOSPC
    FAIL() << "expected ENOSPC StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.error_code(), ENOSPC);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  file->close();
  // Like a real full disk: the bytes that fit were written first.
  EXPECT_EQ(default_storage().read_file(path), "123456789a");
  EXPECT_EQ(metrics.counter("storage.enospc").value(), 1u);
  // The budget stays exhausted: every further append fails too.
  auto more = storage.open(path, Storage::OpenMode::kAppend);
  EXPECT_THROW(more->append("x"), StorageError);
  default_storage().remove(path);
}

TEST(FaultyStorage, FsyncFailurePoisonsTheFilePermanently) {
  StorageFaultConfig config;
  config.fsync_fail = kAlways;
  FaultyStorage storage(default_storage(), config);
  const std::string path = temp_path("faulty_fsyncgate.txt");
  auto file = storage.open(path, Storage::OpenMode::kTruncate);
  file->append("doomed");
  EXPECT_THROW(file->fsync(), StorageError);
  // fsyncgate: the failure is sticky — no silent retry-and-succeed. The
  // un-synced bytes stay un-durable forever.
  EXPECT_THROW(file->fsync(), StorageError);
  EXPECT_THROW(file->fsync(), StorageError);
  file->close();
  default_storage().remove(path);
}

TEST(FaultyStorage, CrashDiscardsUnsyncedTailOnMaterialize) {
  StorageFaultConfig config;
  config.crash_after = 4;  // open, append, fsync, append land; op 5 crashes
  FaultyStorage storage(default_storage(), config);
  const std::string path = temp_path("faulty_crash_tail.txt");
  auto file = storage.open(path, Storage::OpenMode::kTruncate);  // op 1
  file->append("durable|");                                      // op 2
  file->fsync();                                                 // op 3
  file->append("lost");                                          // op 4
  EXPECT_THROW(file->fsync(), StorageCrash);                     // op 5
  EXPECT_TRUE(storage.crashed());
  // After the crash every further op is also a StorageCrash...
  EXPECT_THROW(storage.open(path, Storage::OpenMode::kAppend), StorageCrash);
  file->close();  // ...except close, which must stay unwinding-safe.
  storage.materialize_crash();
  EXPECT_EQ(default_storage().read_file(path), "durable|");
  default_storage().remove(path);
}

TEST(FaultyStorage, CrashRemovesFilesCreatedButNeverSynced) {
  StorageFaultConfig config;
  config.crash_after = 2;  // open + append land; the next op crashes
  FaultyStorage storage(default_storage(), config);
  const std::string path = temp_path("faulty_crash_created.txt");
  auto file = storage.open(path, Storage::OpenMode::kTruncate);  // op 1
  file->append("never synced");                                  // op 2
  EXPECT_THROW(file->fsync(), StorageCrash);                     // op 3
  file->close();
  storage.materialize_crash();
  EXPECT_FALSE(default_storage().exists(path));
}

TEST(FaultyStorage, CrashInRenameWindowUndoesTheRename) {
  StorageFaultConfig config;
  config.crash_after = 4;
  FaultyStorage storage(default_storage(), config);
  const std::string target = temp_path("faulty_crash_target.txt");
  const std::string tmp = target + ".tmp.rename";
  default_storage().open(target, Storage::OpenMode::kTruncate)->append("old");
  {
    auto file = storage.open(tmp, Storage::OpenMode::kTruncate);  // op 1
    file->append("new");                                          // op 2
    file->fsync();                                                // op 3
    file->close();
  }
  storage.rename(tmp, target);  // op 4 — durable only after sync_dir
  EXPECT_EQ(storage.read_file(target), "new");  // live view sees the rename
  storage.file_size(target);                    // reads don't tick the clock
  EXPECT_THROW(storage.sync_dir(target), StorageCrash);  // op 5 crashes
  storage.materialize_crash();
  // The directory entry was never synced: power loss forgets the rename.
  // The old target bytes come back and the temp file is resurrected with
  // its durable contents.
  EXPECT_EQ(default_storage().read_file(target), "old");
  ASSERT_TRUE(default_storage().exists(tmp));
  EXPECT_EQ(default_storage().read_file(tmp), "new");
  default_storage().remove(target);
  default_storage().remove(tmp);
}

TEST(FaultyStorage, SyncDirMakesRenameSurviveCrash) {
  StorageFaultConfig config;
  config.crash_after = 5;
  FaultyStorage storage(default_storage(), config);
  const std::string target = temp_path("faulty_synced_target.txt");
  const std::string tmp = target + ".tmp.rename";
  default_storage().open(target, Storage::OpenMode::kTruncate)->append("old");
  {
    auto file = storage.open(tmp, Storage::OpenMode::kTruncate);  // op 1
    file->append("new");                                          // op 2
    file->fsync();                                                // op 3
    file->close();
  }
  storage.rename(tmp, target);                            // op 4
  storage.sync_dir(target);                               // op 5 — durable now
  EXPECT_THROW(storage.sync_dir(target), StorageCrash);   // op 6 crashes
  storage.materialize_crash();
  EXPECT_EQ(default_storage().read_file(target), "new");
  EXPECT_FALSE(default_storage().exists(tmp));
  default_storage().remove(target);
}

TEST(WriteTextAtomic, InjectedFailureReturnsFalseAndLeavesNoTemp) {
  StorageFaultConfig config;
  config.eio = kAlways;
  FaultyStorage storage(default_storage(), config);
  const std::string path = temp_path("atomic_eio.txt");
  EXPECT_FALSE(obs::write_text_atomic(storage, path, "payload"));
  EXPECT_FALSE(default_storage().exists(path));
  // The torn temp file was cleaned up, not leaked beside the target.
  for (const std::string& name :
       default_storage().list_dir(parent_dir_of(path))) {
    EXPECT_EQ(name.rfind(base_name_of(path) + ".tmp", 0), std::string::npos)
        << "orphaned temp " << name;
  }
}

TEST(WriteTextAtomic, SimulatedPowerLossIsNeverSwallowed) {
  StorageFaultConfig config;
  config.crash_after = 1;  // the open lands; the first append crashes
  FaultyStorage storage(default_storage(), config);
  const std::string path = temp_path("atomic_crash.txt");
  // StorageCrash must NOT be converted into a false return — a "return
  // false on I/O failure" path would let the harness keep running past a
  // power loss.
  EXPECT_THROW(obs::write_text_atomic(storage, path, "payload"),
               StorageCrash);
}

TEST(RemoveOrphanTemps, RemovesOnlyThisPathsTemps) {
  Storage& storage = default_storage();
  const std::string path = temp_path("orphan_base.jsonl");
  const std::string mine1 = path + ".tmp.123.4";
  const std::string mine2 = path + ".tmp.99.1";
  const std::string shard = path + ".w0.tmp.5.6";  // a shard's temp, not ours
  storage.open(path, Storage::OpenMode::kTruncate)->append("keep");
  storage.open(mine1, Storage::OpenMode::kTruncate)->append("stale");
  storage.open(mine2, Storage::OpenMode::kTruncate)->append("stale");
  storage.open(shard, Storage::OpenMode::kTruncate)->append("stale");
  EXPECT_EQ(obs::remove_orphan_temps(storage, path), 2u);
  EXPECT_TRUE(storage.exists(path));
  EXPECT_FALSE(storage.exists(mine1));
  EXPECT_FALSE(storage.exists(mine2));
  EXPECT_TRUE(storage.exists(shard));
  storage.remove(path);
  storage.remove(shard);
}

TEST(JournalFsyncPolicy, ParsesTheThreeSpellings) {
  EXPECT_EQ(parse_journal_fsync_policy("record").mode,
            JournalFsyncPolicy::Mode::kRecord);
  EXPECT_EQ(parse_journal_fsync_policy("none").mode,
            JournalFsyncPolicy::Mode::kNone);
  const JournalFsyncPolicy batch = parse_journal_fsync_policy("batch");
  EXPECT_EQ(batch.mode, JournalFsyncPolicy::Mode::kBatch);
  EXPECT_EQ(batch.batch, 8u);
  const JournalFsyncPolicy batch3 = parse_journal_fsync_policy("batch:3");
  EXPECT_EQ(batch3.mode, JournalFsyncPolicy::Mode::kBatch);
  EXPECT_EQ(batch3.batch, 3u);
  EXPECT_EQ(to_string(batch3), "batch:3");
  EXPECT_EQ(to_string(parse_journal_fsync_policy("record")), "record");
  EXPECT_EQ(to_string(parse_journal_fsync_policy("none")), "none");
}

TEST(JournalFsyncPolicy, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_journal_fsync_policy(""), std::invalid_argument);
  EXPECT_THROW(parse_journal_fsync_policy("always"), std::invalid_argument);
  EXPECT_THROW(parse_journal_fsync_policy("batch:0"), std::invalid_argument);
  EXPECT_THROW(parse_journal_fsync_policy("batch:x"), std::invalid_argument);
  EXPECT_THROW(parse_journal_fsync_policy("batch:"), std::invalid_argument);
}

}  // namespace
}  // namespace mtm
