#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"

namespace mtm {
namespace {

TEST(Experiment, LeaderTrialsDeterministicAcrossThreadCounts) {
  auto make_spec = [](std::size_t threads) {
    LeaderExperiment spec;
    spec.algo = LeaderAlgo::kBlindGossip;
    spec.node_count = 10;
    spec.topology = static_topology(make_clique(10));
    spec.controls.max_rounds = 100000;
    spec.controls.trials = 6;
    spec.controls.seed = 42;
    spec.controls.threads = threads;
    return spec;
  };
  const auto a = run_leader_experiment(make_spec(1));
  const auto b = run_leader_experiment(make_spec(4));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rounds, b[i].rounds);
  }
}

TEST(Experiment, MeasureLeaderSummarizes) {
  LeaderExperiment spec;
  spec.algo = LeaderAlgo::kBlindGossip;
  spec.node_count = 8;
  spec.topology = static_topology(make_clique(8));
  spec.controls.max_rounds = 100000;
  spec.controls.trials = 8;
  spec.controls.seed = 7;
  spec.controls.threads = 2;
  const Summary s = measure_leader(spec);
  EXPECT_EQ(s.count, 8u);
  EXPECT_GT(s.mean, 0.0);
  EXPECT_LE(s.min, s.median);
  EXPECT_LE(s.median, s.max);
}

TEST(Experiment, BitConvergenceRejectsActivations) {
  LeaderExperiment spec;
  spec.algo = LeaderAlgo::kBitConvergence;
  spec.node_count = 4;
  spec.topology = static_topology(make_clique(4));
  spec.controls.max_rounds = 1000;
  spec.controls.trials = 1;
  spec.activation_rounds = {1, 2, 1, 1};
  EXPECT_THROW(run_leader_experiment(spec), ContractError);
}

TEST(Experiment, AsyncAlgoAcceptsActivations) {
  LeaderExperiment spec;
  spec.algo = LeaderAlgo::kAsyncBitConvergence;
  spec.node_count = 6;
  spec.topology = static_topology(make_clique(6));
  spec.controls.max_rounds = 1000000;
  spec.controls.trials = 2;
  spec.controls.seed = 9;
  spec.activation_rounds = {1, 4, 2, 8, 3, 5};
  const auto results = run_leader_experiment(spec);
  for (const auto& r : results) EXPECT_TRUE(r.converged);
}

TEST(Experiment, RumorAlgosAllConvergeOnClique) {
  for (RumorAlgo algo : {RumorAlgo::kPushPull, RumorAlgo::kPpush,
                         RumorAlgo::kClassicalPushPull}) {
    RumorExperiment spec;
    spec.algo = algo;
    spec.node_count = 12;
    spec.topology = static_topology(make_clique(12));
    spec.controls.max_rounds = 100000;
    spec.controls.trials = 3;
    spec.controls.seed = 11;
    const Summary s = measure_rumor(spec);
    EXPECT_GT(s.mean, 0.0) << rumor_algo_name(algo);
  }
}

TEST(Experiment, ValidatesSpec) {
  LeaderExperiment spec;  // missing topology
  spec.node_count = 4;
  spec.controls.max_rounds = 10;
  EXPECT_THROW(run_leader_experiment(spec), ContractError);

  RumorExperiment rumor;
  rumor.topology = static_topology(make_clique(4));
  rumor.node_count = 4;
  rumor.controls.max_rounds = 0;  // invalid
  EXPECT_THROW(run_rumor_experiment(rumor), ContractError);
}

TEST(Experiment, TopologyFactoriesProduceExpectedProviders) {
  auto static_f = static_topology(make_cycle(6));
  auto p1 = static_f(1);
  EXPECT_EQ(p1->stability(), DynamicGraphProvider::kInfiniteStability);
  EXPECT_EQ(p1->node_count(), 6u);

  auto relabel_f = relabeling_topology(make_cycle(6), 3);
  auto p2 = relabel_f(1);
  EXPECT_EQ(p2->stability(), 3u);

  auto regen_f = regenerating_topology(
      [](Rng& rng) { return make_random_regular(8, 3, rng); }, 2);
  auto p3 = regen_f(1);
  EXPECT_EQ(p3->stability(), 2u);
  EXPECT_EQ(p3->node_count(), 8u);
}

TEST(Experiment, DifferentSeedsGiveDifferentTopologySchedules) {
  auto relabel_f = relabeling_topology(make_cycle(8), 1);
  auto a = relabel_f(1);
  auto b = relabel_f(2);
  EXPECT_NE(a->graph_at(1).edges(), b->graph_at(1).edges());
}

TEST(Experiment, AlgoNames) {
  EXPECT_STREQ(leader_algo_name(LeaderAlgo::kBlindGossip), "blind-gossip");
  EXPECT_STREQ(leader_algo_name(LeaderAlgo::kBitConvergence),
               "bit-convergence");
  EXPECT_STREQ(rumor_algo_name(RumorAlgo::kPpush), "ppush(b=1)");
}

}  // namespace
}  // namespace mtm
