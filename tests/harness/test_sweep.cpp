#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/assert.hpp"

namespace mtm {
namespace {

Summary fake_summary(double mean) {
  Summary s;
  s.count = 10;
  s.mean = mean;
  s.median = mean;
  s.min = mean * 0.8;
  s.max = mean * 1.2;
  s.p25 = mean * 0.9;
  s.p75 = mean * 1.1;
  s.p95 = mean * 1.15;
  return s;
}

ScalingSeries quadratic_series() {
  ScalingSeries series("test-series", "n");
  for (double x : {8.0, 16.0, 32.0, 64.0}) {
    SeriesPoint p;
    p.x = x;
    p.measured = fake_summary(3.0 * x * x);
    p.predicted = x * x;
    series.add(p);
  }
  return series;
}

TEST(ScalingSeries, MeasuredExponentRecovered) {
  const ScalingSeries series = quadratic_series();
  const LinearFit fit = series.measured_exponent();
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(series.predicted_exponent().slope, 2.0, 1e-9);
}

TEST(ScalingSeries, RatioDiagnostics) {
  const ScalingSeries series = quadratic_series();
  EXPECT_NEAR(series.mean_ratio(), 3.0, 1e-12);
  EXPECT_NEAR(series.ratio_spread(), 1.0, 1e-12);
}

TEST(ScalingSeries, TableHasRowPerPoint) {
  const ScalingSeries series = quadratic_series();
  const Table table = series.to_table();
  EXPECT_EQ(table.row_count(), 4u);
  EXPECT_EQ(table.column_count(), 9u);
}

TEST(ScalingSeries, ValidatesPoints) {
  ScalingSeries series("bad", "x");
  SeriesPoint p;
  p.x = 0.0;  // invalid
  p.measured = fake_summary(1.0);
  EXPECT_THROW(series.add(p), ContractError);
  SeriesPoint q;
  q.x = 1.0;
  q.measured = Summary{};  // count == 0
  EXPECT_THROW(series.add(q), ContractError);
}

TEST(ScalingSeries, EmptySeriesGuards) {
  ScalingSeries series("empty", "x");
  EXPECT_TRUE(series.empty());
  EXPECT_THROW(series.mean_ratio(), ContractError);
}

TEST(ScalingSeries, ReportPrintsWithoutCrashing) {
  // report() writes to stdout; just exercise the path (CSV env unset).
  ::unsetenv("MTM_BENCH_CSV");
  quadratic_series().report();
  SUCCEED();
}

}  // namespace
}  // namespace mtm
