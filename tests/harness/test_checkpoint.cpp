// TrialJournal: round-trip fidelity, checksum semantics (truncated tail
// dropped, interior corruption refused), fingerprint keying, and the
// atomic checkpoint squash.
#include "harness/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace mtm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

obs::RunManifest test_manifest(std::uint64_t seed = 7) {
  obs::RunManifest manifest = obs::make_run_manifest("journal_test", seed, 2);
  obs::JsonValue config = obs::JsonValue::object();
  config.set("n", obs::JsonValue::unsigned_number(16));
  manifest.config = std::move(config);
  return manifest;
}

JournalRecord sample_record(std::uint64_t point, std::uint64_t trial) {
  JournalRecord r;
  r.point = point;
  r.trial = trial;
  r.seed = trial_seed(7, trial);
  r.result.rounds = 10 + trial;
  r.result.converged = true;
  r.result.rounds_after_last_activation = 10 + trial;
  r.result.connections = 100 * (trial + 1);
  r.result.proposals = 200 * (trial + 1);
  r.result.invariant_violations = 0;
  r.result.split_brain_rounds = trial;
  r.attempts = 1;
  return r;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(JournalRecordLine, RoundTripsEveryField) {
  JournalRecord r = sample_record(3, 5);
  r.attempts = 4;
  r.quarantined = true;
  r.result.converged = false;
  r.result.cancelled = true;  // not serialized: durable records are final
  const JournalRecord back = parse_journal_record(journal_record_line(r));
  EXPECT_EQ(back.point, r.point);
  EXPECT_EQ(back.trial, r.trial);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.result.rounds, r.result.rounds);
  EXPECT_EQ(back.result.converged, r.result.converged);
  EXPECT_EQ(back.result.connections, r.result.connections);
  EXPECT_EQ(back.result.proposals, r.result.proposals);
  EXPECT_EQ(back.result.split_brain_rounds, r.result.split_brain_rounds);
  EXPECT_EQ(back.attempts, r.attempts);
  EXPECT_EQ(back.quarantined, r.quarantined);
}

TEST(JournalRecordLine, RejectsTamperedLine) {
  std::string line = journal_record_line(sample_record(0, 1));
  // Flip the rounds value without recomputing the checksum.
  const std::size_t pos = line.find("\"rounds\":");
  ASSERT_NE(pos, std::string::npos);
  line[pos + 10] = line[pos + 10] == '9' ? '8' : '9';
  EXPECT_THROW(parse_journal_record(line), JournalError);
}

TEST(TrialJournal, CreateAppendLoadRoundTrip) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  const obs::RunManifest manifest = test_manifest();
  {
    TrialJournal journal = TrialJournal::create(path, manifest);
    journal.append(sample_record(0, 0));
    journal.append(sample_record(0, 1));
    journal.append(sample_record(1, 0));
  }
  const TrialJournal::Contents contents = TrialJournal::load(path);
  EXPECT_EQ(contents.fingerprint,
            obs::manifest_fingerprint(manifest.to_json()));
  ASSERT_EQ(contents.records.size(), 3u);
  EXPECT_EQ(contents.records[0].trial, 0u);
  EXPECT_EQ(contents.records[1].trial, 1u);
  EXPECT_EQ(contents.records[2].point, 1u);
  std::remove(path.c_str());
}

TEST(TrialJournal, TruncatedTailIsDroppedOnLoad) {
  const std::string path = temp_path("journal_truncated.jsonl");
  {
    TrialJournal journal = TrialJournal::create(path, test_manifest());
    journal.append(sample_record(0, 0));
    journal.append(sample_record(0, 1));
  }
  // Simulate a kill mid-append: chop the last line in half.
  std::string text = read_all(path);
  text.resize(text.size() - text.size() / 6);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  const TrialJournal::Contents contents = TrialJournal::load(path);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0].trial, 0u);
  std::remove(path.c_str());
}

TEST(TrialJournal, InteriorCorruptionRefusesToLoad) {
  const std::string path = temp_path("journal_interior.jsonl");
  {
    TrialJournal journal = TrialJournal::create(path, test_manifest());
    journal.append(sample_record(0, 0));
    journal.append(sample_record(0, 1));
  }
  // Damage the FIRST record (line 2) while the tail stays valid: this is
  // post-hoc file damage, not an interrupted append, and silently skipping
  // it would shift every aggregate.
  std::string text = read_all(path);
  const std::size_t line2 = text.find('\n') + 1;
  const std::size_t pos = text.find("\"seed\":", line2);
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = text[pos + 7] == '1' ? '2' : '1';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(TrialJournal::load(path), JournalError);
  std::remove(path.c_str());
}

TEST(TrialJournal, CorruptHeaderIsUnrecoverable) {
  const std::string path = temp_path("journal_header.jsonl");
  {
    TrialJournal journal = TrialJournal::create(path, test_manifest());
    journal.append(sample_record(0, 0));
  }
  std::string text = read_all(path);
  text[text.find("fingerprint") + 14] = '!';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(TrialJournal::load(path), JournalError);
  std::remove(path.c_str());
}

TEST(TrialJournal, OpenRejectsMismatchedManifestWithDiff) {
  const std::string path = temp_path("journal_mismatch.jsonl");
  { TrialJournal::create(path, test_manifest(7)); }
  const obs::RunManifest other = test_manifest(8);  // different seed
  try {
    TrialJournal::open(path, &other);
    FAIL() << "expected JournalError";
  } catch (const JournalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fingerprint mismatch"), std::string::npos);
    // The error must carry the manifest diff, not just the hashes.
    EXPECT_NE(what.find("\"seed\": 7"), std::string::npos);
    EXPECT_NE(what.find("\"seed\": 8"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(TrialJournal, TruncationAtEveryByteOffsetNeverShiftsRecords) {
  // Property: however many trailing bytes a crash chops off, load() either
  // returns a clean PREFIX of the original records (the torn tail dropped)
  // or refuses with a diagnosable JournalError (header torn / interior
  // abort). It must never return shifted, reinterpreted, or extra records —
  // that would silently change resumed aggregates.
  const std::string path = temp_path("journal_every_offset.jsonl");
  {
    TrialJournal journal = TrialJournal::create(path, test_manifest());
    journal.append(sample_record(0, 0));
    journal.append(sample_record(0, 1));
    journal.append(sample_record(1, 0));
  }
  const TrialJournal::Contents full = TrialJournal::load(path);
  ASSERT_EQ(full.records.size(), 3u);
  const std::string text = read_all(path);
  for (std::size_t len = 0; len <= text.size(); ++len) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << text.substr(0, len);
    }
    try {
      const TrialJournal::Contents loaded = TrialJournal::load(path);
      ASSERT_LE(loaded.records.size(), full.records.size())
          << "extra records conjured at offset " << len;
      for (std::size_t i = 0; i < loaded.records.size(); ++i) {
        ASSERT_EQ(loaded.records[i].point, full.records[i].point)
            << "offset " << len << " record " << i;
        ASSERT_EQ(loaded.records[i].trial, full.records[i].trial)
            << "offset " << len << " record " << i;
        ASSERT_EQ(loaded.records[i].seed, full.records[i].seed)
            << "offset " << len << " record " << i;
        ASSERT_EQ(loaded.records[i].result.rounds,
                  full.records[i].result.rounds)
            << "offset " << len << " record " << i;
      }
    } catch (const JournalError&) {
      // Diagnosable refusal is the other acceptable outcome.
    }
  }
  std::remove(path.c_str());
}

TEST(TrialJournal, CreateAndOpenSweepOrphanedTempFiles) {
  // An atomic write killed between temp-file creation and rename leaves
  // "<path>.tmp.<pid>.<counter>" behind; the next create/open removes them
  // so they cannot accumulate across resumed runs.
  const std::string path = temp_path("journal_orphans.jsonl");
  const obs::RunManifest manifest = test_manifest();
  const std::string orphan1 = path + ".tmp.4242.7";
  const std::string orphan2 = path + ".tmp.1.1";
  {
    std::ofstream(orphan1) << "half-written";
    std::ofstream(orphan2) << "half-written";
  }
  { TrialJournal::create(path, manifest); }
  std::ifstream check1(orphan1);
  EXPECT_FALSE(check1.good()) << "create left orphan temp behind";
  {
    std::ofstream(orphan1) << "half-written again";
  }
  { TrialJournal::open(path, &manifest); }
  std::ifstream check2(orphan1);
  EXPECT_FALSE(check2.good()) << "open left orphan temp behind";
  std::remove(path.c_str());
}

TEST(TrialJournal, OpenSquashesTruncatedTailAndAppends) {
  const std::string path = temp_path("journal_reopen.jsonl");
  const obs::RunManifest manifest = test_manifest();
  {
    TrialJournal journal = TrialJournal::create(path, manifest);
    journal.append(sample_record(0, 0));
    journal.append(sample_record(0, 1));
  }
  std::string text = read_all(path);
  text.resize(text.size() - 5);  // wound the tail record
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  {
    TrialJournal journal = TrialJournal::open(path, &manifest);
    ASSERT_EQ(journal.records().size(), 1u);  // tail dropped
    journal.append(sample_record(0, 1));      // re-run lands again
    journal.checkpoint();
  }
  const TrialJournal::Contents contents = TrialJournal::load(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[1].trial, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtm
