// Distributed sweep fabric: protocol round-trips (mtm-fabric/2 and the
// accepted /1 legacy), LeaseTable expiry and heartbeat-liveness edge cases,
// the per-connection sequence window, and coordinator/worker end-to-end
// runs — over loopback transports, under deterministic wire faults, through
// a forced mid-lease reconnect, past a half-open (silent) worker, and over
// real TCP with chaos-decorated network workers — all of which must
// reproduce a single-process SweepRunner byte-for-byte.
#include "harness/fabric.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mtm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

obs::RunManifest fabric_manifest(std::uint64_t seed = 11) {
  obs::RunManifest manifest = obs::make_run_manifest("fabric_test", seed, 1);
  obs::JsonValue config = obs::JsonValue::object();
  config.set("kind", obs::JsonValue::string("synthetic"));
  manifest.config = std::move(config);
  return manifest;
}

/// Deterministic synthetic trial: every field a pure function of the seed,
/// so a worker-executed trial and a local one are trivially comparable.
RunResult synthetic_result(std::uint64_t seed) {
  RunResult r;
  r.rounds = seed % 97 + 1;
  r.converged = true;
  r.rounds_after_last_activation = r.rounds;
  r.connections = seed % 31;
  r.proposals = seed % 17;
  return r;
}

std::vector<SweepPoint> synthetic_points(std::size_t points,
                                         std::size_t trials,
                                         std::uint64_t master) {
  std::vector<SweepPoint> out;
  for (std::size_t p = 0; p < points; ++p) {
    SweepPoint point;
    point.label = "p" + std::to_string(p);
    point.trials = trials;
    point.master_seed = master + p;
    point.body = [](std::uint64_t seed, const TrialCancel*) {
      return synthetic_result(seed);
    };
    out.push_back(std::move(point));
  }
  return out;
}

void expect_same_results(const SweepReport& a, const SweepReport& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    ASSERT_EQ(a.points[p].size(), b.points[p].size());
    for (std::size_t t = 0; t < a.points[p].size(); ++t) {
      const RunResult& x = a.points[p][t];
      const RunResult& y = b.points[p][t];
      EXPECT_EQ(x.rounds, y.rounds) << "point " << p << " trial " << t;
      EXPECT_EQ(x.converged, y.converged);
      EXPECT_EQ(x.connections, y.connections);
      EXPECT_EQ(x.proposals, y.proposals);
    }
  }
}

/// The wire line a worker would send for (point, trial): the same checksummed
/// journal serialization real workers produce from execute_sweep_trial.
std::string result_line(const std::vector<SweepPoint>& points,
                        std::uint64_t point, std::uint64_t trial) {
  JournalRecord rec;
  rec.point = point;
  rec.trial = trial;
  rec.seed = trial_seed(points[point].master_seed, trial);
  rec.result = synthetic_result(rec.seed);
  rec.attempts = 1;
  return journal_record_line(rec);
}

/// Blocks until the peer sends a message or hangs up; nullopt on hangup.
std::optional<FabricMessage> next_message(Transport& transport) {
  std::string line;
  for (;;) {
    if (transport.poll_line(&line)) return parse_fabric_message(line);
    if (transport.closed()) return std::nullopt;
    transport.wait_readable(50);
  }
}

void send(Transport& transport, const FabricMessage& message) {
  (void)transport.send_line(encode_fabric_message(message));
}

FabricMessage make_message(FabricMessage::Type type, std::uint64_t worker,
                           std::uint64_t lease = 0) {
  FabricMessage m;
  m.type = type;
  m.worker = worker;
  m.lease = lease;
  return m;
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

TEST(FabricMessage, RoundTripsEveryTypeAndField) {
  const FabricMessage::Type types[] = {
      FabricMessage::Type::kHello,     FabricMessage::Type::kLease,
      FabricMessage::Type::kHeartbeat, FabricMessage::Type::kResult,
      FabricMessage::Type::kShutdown,  FabricMessage::Type::kBye,
  };
  for (const FabricMessage::Type type : types) {
    FabricMessage m;
    m.type = type;
    m.worker = 3;
    m.lease = 17;
    m.point = 2;
    m.trials = {5, 6, 7};
    m.sent_ms = 123456;
    m.record = "payload with \"quotes\" and \\ backslashes";
    const FabricMessage back = parse_fabric_message(encode_fabric_message(m));
    EXPECT_EQ(back.type, type) << to_string(type);
    EXPECT_EQ(back.worker, 3u);
    EXPECT_EQ(back.lease, 17u);
    EXPECT_EQ(back.point, 2u);
    EXPECT_EQ(back.trials, m.trials);
    EXPECT_EQ(back.sent_ms, 123456u);
    EXPECT_EQ(back.record, m.record);
  }
}

TEST(FabricMessage, RejectsMalformedAndForeignLines) {
  EXPECT_THROW(parse_fabric_message("not json"), FabricError);
  EXPECT_THROW(parse_fabric_message("[1,2,3]"), FabricError);
  // Wrong or missing schema tag: a journal line must never be mistaken for
  // a protocol message, nor a message from an incompatible fabric version.
  EXPECT_THROW(parse_fabric_message(R"({"type":"hello"})"), FabricError);
  EXPECT_THROW(
      parse_fabric_message(R"({"schema":"mtm-fabric/99","type":"hello"})"),
      FabricError);
  EXPECT_THROW(
      parse_fabric_message(R"({"schema":"mtm-fabric/1","type":"gossip"})"),
      FabricError);
  EXPECT_THROW(parse_fabric_message(R"({"schema":"mtm-fabric/1"})"),
               FabricError);
  EXPECT_THROW(
      parse_fabric_message(
          R"({"schema":"mtm-fabric/1","type":"lease","trials":[1,"x"]})"),
      FabricError);
}

// ---------------------------------------------------------------------------
// LeaseTable edge cases
// ---------------------------------------------------------------------------

TEST(LeaseTable, HeartbeatExactlyAtDeadlineStillRenews) {
  LeaseTable table(100);
  const std::uint64_t id = table.grant(0, 0, {0, 1}, /*now=*/1000);
  ASSERT_EQ(id, 1u);

  // Expiry is strictly past-deadline: at the deadline the lease is alive
  // and a heartbeat landing exactly then renews it.
  EXPECT_TRUE(table.expire(1100).empty());
  EXPECT_TRUE(table.renew(id, 1100));  // deadline is now 1200
  EXPECT_TRUE(table.expire(1200).empty());
  EXPECT_FALSE(table.renew(id, 1201));  // one tick late is late

  const std::vector<LeaseTable::Expired> expired = table.expire(1201);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, id);
  ASSERT_EQ(expired[0].incomplete.size(), 2u);
  EXPECT_EQ(expired[0].incomplete[0], (std::pair<std::uint64_t,
                                                 std::uint64_t>{0, 0}));
  // Once expired the id is retired forever.
  EXPECT_FALSE(table.renew(id, 1201));
  EXPECT_EQ(table.complete(id, 0, 0, 1201), LeaseTable::CompleteStatus::kStale);
  EXPECT_EQ(table.open_leases(), 0u);
}

TEST(LeaseTable, CompleteRenewsRetiresAndDetectsStaleKeys) {
  LeaseTable table(100);
  const std::uint64_t id = table.grant(0, 7, {3, 4}, /*now=*/0);

  // Delivering data renews the deadline (data is the strongest heartbeat).
  EXPECT_EQ(table.complete(id, 7, 3, 90), LeaseTable::CompleteStatus::kAccepted);
  EXPECT_TRUE(table.expire(150).empty());  // deadline moved to 190

  // A key the lease never granted — or already delivered — is stale.
  EXPECT_EQ(table.complete(id, 7, 9, 150), LeaseTable::CompleteStatus::kStale);
  EXPECT_EQ(table.complete(id, 7, 3, 150), LeaseTable::CompleteStatus::kStale);
  EXPECT_EQ(table.complete(id, 8, 4, 150), LeaseTable::CompleteStatus::kStale);

  // The last pending trial retires the lease; afterwards the id is dead.
  EXPECT_EQ(table.complete(id, 7, 4, 185),
            LeaseTable::CompleteStatus::kCompletedLease);
  EXPECT_EQ(table.open_leases(), 0u);
  EXPECT_EQ(table.complete(id, 7, 4, 185), LeaseTable::CompleteStatus::kStale);
  EXPECT_FALSE(table.renew(id, 186));

  // A result one tick past the deadline is stale even with the key pending.
  const std::uint64_t late = table.grant(0, 7, {5}, /*now=*/1000);
  EXPECT_EQ(table.complete(late, 7, 5, 1101),
            LeaseTable::CompleteStatus::kStale);
}

TEST(LeaseTable, ExpireWorkerDrainsOnlyThatWorkerAndIdsNeverRecycle) {
  LeaseTable table(1000);
  const std::uint64_t a = table.grant(0, 0, {0, 1}, 0);
  const std::uint64_t b = table.grant(1, 0, {2, 3}, 0);
  ASSERT_NE(a, b);
  EXPECT_EQ(table.complete(a, 0, 0, 1), LeaseTable::CompleteStatus::kAccepted);

  const std::vector<LeaseTable::Expired> dead = table.expire_worker(0);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].id, a);
  EXPECT_EQ(dead[0].worker, 0u);
  // Only the undelivered key comes back for requeue.
  ASSERT_EQ(dead[0].incomplete.size(), 1u);
  EXPECT_EQ(dead[0].incomplete[0],
            (std::pair<std::uint64_t, std::uint64_t>{0, 1}));

  // Worker 1's lease is untouched and still completes.
  EXPECT_EQ(table.open_leases(), 1u);
  EXPECT_EQ(table.complete(b, 0, 2, 2), LeaseTable::CompleteStatus::kAccepted);

  // Ids keep climbing after expiry — a stale id can never alias a new lease.
  const std::uint64_t c = table.grant(0, 0, {1}, 3);
  EXPECT_GT(c, b);
  EXPECT_EQ(table.complete(a, 0, 1, 3), LeaseTable::CompleteStatus::kStale);
}

// ---------------------------------------------------------------------------
// End-to-end over loopback transports
// ---------------------------------------------------------------------------

TEST(Fabric, LoopbackWorkersReproduceSweepRunnerByteForByte) {
  const obs::RunManifest manifest = fabric_manifest();
  const std::vector<SweepPoint> points = synthetic_points(3, 4, 300);

  SweepRunner control(manifest, ResilienceOptions{});
  const SweepReport expected = control.run(synthetic_points(3, 4, 300), 2);

  FabricOptions options;
  options.workers = 2;
  options.lease_ms = 60000;  // no expiry in a clean run
  options.heartbeat_ms = 5;  // but plenty of heartbeats
  options.lease_batch = 3;

  obs::MetricRegistry metrics;
  options.metrics = &metrics;

  std::vector<WorkerEndpoint> endpoints;
  std::vector<std::thread> threads;
  std::vector<int> exit_codes(2, -1);
  for (std::size_t w = 0; w < 2; ++w) {
    auto [coord_side, worker_side] = make_loopback_transport();
    endpoints.push_back(WorkerEndpoint{std::move(coord_side), -1});
    threads.emplace_back(
        [&, w, transport = std::move(worker_side)]() mutable {
          exit_codes[w] = run_fabric_worker(*transport, points, manifest,
                                            options, w);
        });
  }

  FabricCoordinator coordinator(manifest, options);
  const SweepReport report = coordinator.run(points, std::move(endpoints));
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(exit_codes[0], 0);
  EXPECT_EQ(exit_codes[1], 0);
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.executed_trials, 12u);
  EXPECT_EQ(report.resumed_trials, 0u);
  expect_same_results(report, expected);

  const FabricStats& stats = coordinator.stats();
  // Clean-run lease accounting: everything granted was completed.
  EXPECT_EQ(stats.leases_granted,
            stats.leases_completed + stats.leases_expired +
                stats.leases_aborted);
  EXPECT_EQ(stats.leases_expired, 0u);
  EXPECT_EQ(stats.worker_deaths, 0u);
  EXPECT_EQ(stats.late_results_discarded, 0u);
  EXPECT_EQ(metrics.counter("fabric.leases_granted").value(),
            stats.leases_granted);
  EXPECT_EQ(metrics.counter("fabric.worker_deaths").value(), 0u);
}

TEST(Fabric, LateResultAfterExpiryIsDiscardedDeterministically) {
  const obs::RunManifest manifest = fabric_manifest();
  const std::vector<SweepPoint> points = synthetic_points(1, 2, 400);

  // Injected clock: the scripted worker advances time instead of sleeping,
  // so the expiry/regrant/late-result interleaving is fully deterministic.
  auto now = std::make_shared<std::atomic<std::uint64_t>>(1);
  FabricOptions options;
  options.workers = 1;
  options.lease_ms = 1000;

  auto [coord_side, worker_side] = make_loopback_transport();
  std::vector<WorkerEndpoint> endpoints;
  endpoints.push_back(WorkerEndpoint{std::move(coord_side), -1});

  std::thread worker([&, transport = std::move(worker_side)]() mutable {
    Transport& t = *transport;
    send(t, make_message(FabricMessage::Type::kHello, 0));

    // Sit on the first lease until it expires under us...
    const std::optional<FabricMessage> first = next_message(t);
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->type, FabricMessage::Type::kLease);
    ASSERT_EQ(first->trials.size(), 2u);
    now->fetch_add(options.lease_ms + 1);

    // ...wait for the regrant, then deliver a LATE result under the dead
    // lease id before the fresh results under the live one.
    const std::optional<FabricMessage> second = next_message(t);
    ASSERT_TRUE(second.has_value());
    ASSERT_EQ(second->type, FabricMessage::Type::kLease);
    ASSERT_NE(second->lease, first->lease);

    FabricMessage late = make_message(FabricMessage::Type::kResult, 0,
                                      first->lease);
    late.record = result_line(points, first->point, first->trials[0]);
    send(t, late);
    for (const std::uint64_t trial : second->trials) {
      FabricMessage result = make_message(FabricMessage::Type::kResult, 0,
                                          second->lease);
      result.record = result_line(points, second->point, trial);
      send(t, result);
    }

    const std::optional<FabricMessage> fin = next_message(t);
    ASSERT_TRUE(fin.has_value());
    ASSERT_EQ(fin->type, FabricMessage::Type::kShutdown);
    send(t, make_message(FabricMessage::Type::kBye, 0));
  });

  FabricCoordinator coordinator(manifest, options,
                                [now] { return now->load(); });
  const SweepReport report = coordinator.run(points, std::move(endpoints));
  worker.join();

  EXPECT_FALSE(report.interrupted);
  ASSERT_EQ(report.points.size(), 1u);
  for (std::size_t trial = 0; trial < 2; ++trial) {
    EXPECT_EQ(report.points[0][trial].rounds,
              synthetic_result(trial_seed(400, trial)).rounds);
  }
  const FabricStats& stats = coordinator.stats();
  EXPECT_EQ(stats.leases_granted, 2u);
  EXPECT_EQ(stats.leases_expired, 1u);
  EXPECT_EQ(stats.leases_completed, 1u);
  EXPECT_EQ(stats.trials_requeued, 2u);
  EXPECT_EQ(stats.late_results_discarded, 1u);
  EXPECT_EQ(stats.worker_deaths, 0u);
}

TEST(Fabric, WorkerKilledMidBatchDrainsThenResumeCompletes) {
  const std::string journal = temp_path("fabric_death.jsonl");
  std::remove(journal.c_str());
  const obs::RunManifest manifest = fabric_manifest();
  const std::vector<SweepPoint> points = synthetic_points(1, 2, 500);

  SweepRunner control(manifest, ResilienceOptions{});
  const SweepReport expected = control.run(synthetic_points(1, 2, 500), 1);

  FabricOptions options;
  options.workers = 1;
  options.lease_ms = 60000;
  options.resilience.journal_path = journal;

  // Phase 1: the only worker delivers half its batch and dies. The
  // coordinator must keep the delivered half, requeue the rest, and report
  // a partial (interrupted) sweep instead of hanging.
  {
    auto [coord_side, worker_side] = make_loopback_transport();
    std::vector<WorkerEndpoint> endpoints;
    endpoints.push_back(WorkerEndpoint{std::move(coord_side), -1});
    std::thread worker([&, transport = std::move(worker_side)]() mutable {
      Transport& t = *transport;
      send(t, make_message(FabricMessage::Type::kHello, 0));
      const std::optional<FabricMessage> lease = next_message(t);
      ASSERT_TRUE(lease.has_value());
      ASSERT_EQ(lease->trials.size(), 2u);
      FabricMessage result = make_message(FabricMessage::Type::kResult, 0,
                                          lease->lease);
      result.record = result_line(points, lease->point, lease->trials[0]);
      send(t, result);
      t.sever();  // SIGKILL from the transport's point of view
    });

    FabricCoordinator coordinator(manifest, options);
    const SweepReport partial = coordinator.run(points, std::move(endpoints));
    worker.join();

    EXPECT_TRUE(partial.interrupted);
    EXPECT_TRUE(partial.points.empty());  // the point never completed
    EXPECT_EQ(partial.executed_trials, 1u);
    const FabricStats& stats = coordinator.stats();
    EXPECT_EQ(stats.worker_deaths, 1u);
    EXPECT_EQ(stats.leases_expired, 1u);
    EXPECT_EQ(stats.trials_requeued, 1u);
    EXPECT_EQ(stats.leases_completed, 0u);
  }

  // Phase 2: resume against the same journal with a real worker loop; the
  // surviving trial is merged first-wins and only the missing one runs.
  options.resilience.resume = true;
  {
    auto [coord_side, worker_side] = make_loopback_transport();
    std::vector<WorkerEndpoint> endpoints;
    endpoints.push_back(WorkerEndpoint{std::move(coord_side), -1});
    int exit_code = -1;
    std::thread worker([&, transport = std::move(worker_side)]() mutable {
      exit_code = run_fabric_worker(*transport, points, manifest, options, 0);
    });

    FabricCoordinator coordinator(manifest, options);
    const SweepReport resumed = coordinator.run(points, std::move(endpoints));
    worker.join();

    EXPECT_EQ(exit_code, 0);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.resumed_trials, 1u);
    EXPECT_EQ(resumed.executed_trials, 1u);
    expect_same_results(resumed, expected);
  }

  // The merged journal holds exactly one record per key across both runs.
  const TrialJournal::Contents merged = TrialJournal::load(journal);
  EXPECT_EQ(merged.records.size(), 2u);
  std::remove(journal.c_str());
}

TEST(Fabric, RequeueBudgetExhaustionQuarantinesTheTrial) {
  const obs::RunManifest manifest = fabric_manifest();
  const std::vector<SweepPoint> points = synthetic_points(1, 2, 600);

  auto now = std::make_shared<std::atomic<std::uint64_t>>(1);
  FabricOptions options;
  options.workers = 1;
  options.lease_ms = 1000;
  options.max_requeues = 1;

  auto [coord_side, worker_side] = make_loopback_transport();
  std::vector<WorkerEndpoint> endpoints;
  endpoints.push_back(WorkerEndpoint{std::move(coord_side), -1});

  // A worker that accepts every lease and never delivers: each grant ages
  // out, and after max_requeues the coordinator gives up on the keys.
  std::thread worker([&, transport = std::move(worker_side)]() mutable {
    Transport& t = *transport;
    send(t, make_message(FabricMessage::Type::kHello, 0));
    for (;;) {
      const std::optional<FabricMessage> msg = next_message(t);
      if (!msg.has_value()) return;
      if (msg->type == FabricMessage::Type::kShutdown) {
        send(t, make_message(FabricMessage::Type::kBye, 0));
        return;
      }
      if (msg->type == FabricMessage::Type::kLease) {
        now->fetch_add(options.lease_ms + 1);
      }
    }
  });

  FabricCoordinator coordinator(manifest, options,
                                [now] { return now->load(); });
  const SweepReport report = coordinator.run(points, std::move(endpoints));
  worker.join();

  // The sweep terminates — with every trial censored, not hung forever.
  EXPECT_FALSE(report.interrupted);
  ASSERT_EQ(report.points.size(), 1u);
  ASSERT_EQ(report.quarantined.size(), 2u);
  for (std::size_t trial = 0; trial < 2; ++trial) {
    EXPECT_TRUE(report.points[0][trial].cancelled);
    EXPECT_FALSE(report.points[0][trial].converged);
    EXPECT_EQ(report.quarantined[trial].trial, trial);
    EXPECT_EQ(report.quarantined[trial].seed, trial_seed(600, trial));
  }
  const FabricStats& stats = coordinator.stats();
  EXPECT_EQ(stats.fabric_quarantined, 2u);
  EXPECT_EQ(stats.leases_granted, 2u);
  EXPECT_EQ(stats.leases_expired, 2u);
  EXPECT_EQ(stats.trials_requeued, 2u);
  EXPECT_EQ(stats.leases_completed, 0u);
}

// ---------------------------------------------------------------------------
// mtm-fabric/2: session / seq / fingerprint, legacy acceptance, SeqWindow
// ---------------------------------------------------------------------------

TEST(FabricMessage, RoundTripsSessionSeqFingerprintAndWelcome) {
  FabricMessage m;
  m.type = FabricMessage::Type::kHello;
  m.worker = 2;
  m.session = 0xfeedface;
  m.seq = 41;
  m.fingerprint = "abc123";
  const std::string line = encode_fabric_message(m);
  EXPECT_NE(line.find("mtm-fabric/2"), std::string::npos);
  const FabricMessage back = parse_fabric_message(line);
  EXPECT_EQ(back.type, FabricMessage::Type::kHello);
  EXPECT_EQ(back.session, 0xfeedfaceu);
  EXPECT_EQ(back.seq, 41u);
  EXPECT_EQ(back.fingerprint, "abc123");

  FabricMessage welcome;
  welcome.type = FabricMessage::Type::kWelcome;
  welcome.worker = 5;
  const FabricMessage wback =
      parse_fabric_message(encode_fabric_message(welcome));
  EXPECT_EQ(wback.type, FabricMessage::Type::kWelcome);
  EXPECT_EQ(wback.worker, 5u);

  // The /2 fields are omitted at their defaults: a legacy-shaped message
  // encodes to exactly the keys /1 used (plus the schema bump).
  FabricMessage legacy;
  legacy.type = FabricMessage::Type::kHeartbeat;
  legacy.lease = 9;
  const std::string legacy_line = encode_fabric_message(legacy);
  EXPECT_EQ(legacy_line.find("session"), std::string::npos);
  EXPECT_EQ(legacy_line.find("seq"), std::string::npos);
  EXPECT_EQ(legacy_line.find("fingerprint"), std::string::npos);
}

TEST(FabricMessage, StillAcceptsLegacySchemaVersionOne) {
  const FabricMessage m = parse_fabric_message(
      R"({"schema":"mtm-fabric/1","type":"heartbeat","worker":3,"lease":9})");
  EXPECT_EQ(m.type, FabricMessage::Type::kHeartbeat);
  EXPECT_EQ(m.worker, 3u);
  EXPECT_EQ(m.lease, 9u);
  EXPECT_EQ(m.session, 0u);  // legacy peers are session 0 by construction
  EXPECT_EQ(m.seq, 0u);
}

TEST(SeqWindow, AcceptsEachSeqOnceToleratesReorderAndAlwaysPassesZero) {
  SeqWindow w;
  // In-order stream.
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(2));
  EXPECT_FALSE(w.accept(2));  // wire duplicate of the newest line
  EXPECT_TRUE(w.accept(3));
  EXPECT_FALSE(w.accept(1));  // older duplicate within the window
  // Reordered arrival: 6 lands before 4 and 5; all three pass exactly once.
  EXPECT_TRUE(w.accept(6));
  EXPECT_TRUE(w.accept(4));
  EXPECT_TRUE(w.accept(5));
  EXPECT_FALSE(w.accept(4));
  EXPECT_FALSE(w.accept(6));
  // Unsequenced (legacy) lines are never suppressed.
  EXPECT_TRUE(w.accept(0));
  EXPECT_TRUE(w.accept(0));
  // Beyond the 64-deep window everything older is presumed stale.
  EXPECT_TRUE(w.accept(200));
  EXPECT_FALSE(w.accept(100));
  // reset() starts a fresh connection's numbering.
  w.reset();
  EXPECT_TRUE(w.accept(1));
}

TEST(LeaseTable, LivenessDeadlineIsStrictlyPastAndReportsOnce) {
  LeaseTable table(100, /*liveness_ms=*/500);
  EXPECT_EQ(table.liveness_ms(), 500u);
  table.note_peer_alive(0, 1000);
  table.note_peer_alive(1, 1200);

  // Exactly at the deadline is still alive (same edge rule as leases).
  EXPECT_TRUE(table.lifeless_peers(1500).empty());
  // One tick past: only worker 0 is dead, and death is declared once.
  std::vector<std::uint64_t> dead = table.lifeless_peers(1501);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 0u);
  EXPECT_TRUE(table.lifeless_peers(1501).empty());

  // A sign of life pushes the deadline; stale updates never move it back.
  table.note_peer_alive(1, 1600);
  table.note_peer_alive(1, 1300);  // out-of-order observation
  EXPECT_TRUE(table.lifeless_peers(2100).empty());
  EXPECT_EQ(table.lifeless_peers(2101), std::vector<std::uint64_t>{1});

  // drop_peer forgets the worker entirely (clean shutdown path).
  table.note_peer_alive(2, 3000);
  table.drop_peer(2);
  EXPECT_TRUE(table.lifeless_peers(10000).empty());

  // liveness_ms = 0 disables the whole mechanism (forked fabric).
  LeaseTable off(100);
  off.note_peer_alive(0, 0);
  EXPECT_TRUE(off.lifeless_peers(1u << 30).empty());
}

// ---------------------------------------------------------------------------
// End-to-end under deterministic wire faults (loopback)
// ---------------------------------------------------------------------------

TEST(Fabric, LoopbackWorkersUnderWireFaultsReproduceSweepRunnerByteForByte) {
  const obs::RunManifest manifest = fabric_manifest();
  const std::vector<SweepPoint> points = synthetic_points(3, 4, 800);

  SweepRunner control(manifest, ResilienceOptions{});
  const SweepReport expected = control.run(synthetic_points(3, 4, 800), 2);

  FabricOptions options;
  options.workers = 2;
  options.lease_ms = 400;   // dropped results recover via expiry + requeue
  options.heartbeat_ms = 10;  // fast re-hello when the hello is dropped
  options.lease_batch = 3;

  obs::MetricRegistry metrics;
  options.metrics = &metrics;

  // Each worker is a session peer whose SENDS pass through a seeded fault
  // decorator: ~10% of its lines are dropped, duplicated, or reordered.
  // Dropped hellos are re-sent by the heartbeat thread, dropped results
  // recover through lease expiry + requeue (same seed, identical record),
  // and wire duplicates are discarded by the coordinator's seq window — so
  // the merged aggregates still match the clean single-process run exactly.
  std::vector<WorkerEndpoint> endpoints;
  std::vector<std::thread> threads;
  std::vector<int> exit_codes(2, -1);
  std::vector<FabricWorkerNet> nets(2);
  for (std::size_t w = 0; w < 2; ++w) {
    auto [coord_side, worker_side] = make_loopback_transport();
    endpoints.push_back(WorkerEndpoint{std::move(coord_side), -1});
    WireFaultConfig chaos;
    chaos.drop = 0.1;
    chaos.duplicate = 0.1;
    chaos.reorder = 0.1;
    chaos.seed = 100 + w;
    auto faulty = std::make_unique<FaultyTransport>(std::move(worker_side),
                                                    chaos, &metrics);
    nets[w].session = 1000 + w;
    threads.emplace_back([&, w, transport = std::move(faulty)]() mutable {
      exit_codes[w] = run_fabric_worker(std::move(transport), points,
                                        manifest, options, w, &nets[w]);
    });
  }

  FabricCoordinator coordinator(manifest, options);
  const SweepReport report = coordinator.run(points, std::move(endpoints));
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(exit_codes[0], 0);
  EXPECT_EQ(exit_codes[1], 0);
  EXPECT_FALSE(report.interrupted);
  expect_same_results(report, expected);

  const FabricStats& stats = coordinator.stats();
  EXPECT_EQ(stats.leases_granted,
            stats.leases_completed + stats.leases_expired +
                stats.leases_aborted);
  EXPECT_GT(metrics.counter("fabric.net.lines").value(), 0u);
}

// ---------------------------------------------------------------------------
// Reconnect / resume and half-open death (scripted listener)
// ---------------------------------------------------------------------------

/// Test listener: hands out connections queued by the test, so reconnect
/// scenarios are scripted instead of raced.
class ManualListener final : public FabricListener {
 public:
  std::unique_ptr<Transport> accept() override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return nullptr;
    std::unique_ptr<Transport> t = std::move(queue_.front());
    queue_.pop_front();
    return t;
  }
  void offer(std::unique_ptr<Transport> t) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(t));
  }

 private:
  std::mutex mutex_;
  std::deque<std::unique_ptr<Transport>> queue_;
};

TEST(Fabric, ReconnectMidLeaseResumesWithoutRequeueAndDropsWireDuplicates) {
  const obs::RunManifest manifest = fabric_manifest();
  const std::vector<SweepPoint> points = synthetic_points(1, 2, 900);

  FabricOptions options;
  options.lease_ms = 10000;  // nothing expires during the scripted exchange
  options.lease_batch = 2;

  auto now = std::make_shared<std::atomic<std::uint64_t>>(1000);
  ManualListener listener;
  const std::uint64_t kSession = 77;

  std::thread worker([&] {
    const auto stamped = [&](FabricMessage m, std::uint64_t seq) {
      m.session = kSession;
      m.seq = seq;
      return m;
    };

    // Connection A: hello, take the lease, deliver HALF of it, then break.
    auto [a_coord, a_worker] = make_loopback_transport();
    listener.offer(std::move(a_coord));
    send(*a_worker, stamped(make_message(FabricMessage::Type::kHello, 0), 1));
    const std::optional<FabricMessage> welcome_a = next_message(*a_worker);
    ASSERT_TRUE(welcome_a.has_value());
    ASSERT_EQ(welcome_a->type, FabricMessage::Type::kWelcome);
    const std::optional<FabricMessage> lease = next_message(*a_worker);
    ASSERT_TRUE(lease.has_value());
    ASSERT_EQ(lease->type, FabricMessage::Type::kLease);
    ASSERT_EQ(lease->trials.size(), 2u);
    FabricMessage first = make_message(FabricMessage::Type::kResult, 0,
                                       lease->lease);
    first.record = result_line(points, lease->point, lease->trials[0]);
    send(*a_worker, stamped(first, 2));
    a_worker->sever();  // the network eats the connection mid-lease

    // Connection B: same session re-hellos; the coordinator transplants it
    // into the same slot and the LIVE lease keeps running — the second
    // trial is delivered under the original lease id, no requeue.
    auto [b_coord, b_worker] = make_loopback_transport();
    listener.offer(std::move(b_coord));
    send(*b_worker, stamped(make_message(FabricMessage::Type::kHello, 0), 1));
    const std::optional<FabricMessage> welcome_b = next_message(*b_worker);
    ASSERT_TRUE(welcome_b.has_value());
    ASSERT_EQ(welcome_b->type, FabricMessage::Type::kWelcome);
    FabricMessage second = make_message(FabricMessage::Type::kResult, 0,
                                        lease->lease);
    second.record = result_line(points, lease->point, lease->trials[1]);
    const std::string wire = encode_fabric_message(stamped(second, 2));
    // The wire duplicates the line: the seq window must discard the copy.
    (void)b_worker->send_line(wire);
    (void)b_worker->send_line(wire);

    const std::optional<FabricMessage> fin = next_message(*b_worker);
    ASSERT_TRUE(fin.has_value());
    ASSERT_EQ(fin->type, FabricMessage::Type::kShutdown);
    send(*b_worker, stamped(make_message(FabricMessage::Type::kBye, 0), 3));
  });

  FabricCoordinator coordinator(manifest, options,
                                [now] { return now->load(); });
  const SweepReport report = coordinator.run(points, {}, &listener);
  worker.join();

  EXPECT_FALSE(report.interrupted);
  ASSERT_EQ(report.points.size(), 1u);
  for (std::size_t trial = 0; trial < 2; ++trial) {
    EXPECT_EQ(report.points[0][trial].rounds,
              synthetic_result(trial_seed(900, trial)).rounds);
  }
  const FabricStats& stats = coordinator.stats();
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.trials_requeued, 0u);   // the lease survived the break
  EXPECT_EQ(stats.leases_granted, 1u);
  EXPECT_EQ(stats.leases_completed, 1u);
  EXPECT_EQ(stats.leases_expired, 0u);
  EXPECT_EQ(stats.stale_seq_discarded, 1u);  // the duplicated result line
  EXPECT_EQ(stats.worker_deaths, 0u);
  EXPECT_EQ(stats.liveness_deaths, 0u);
}

TEST(Fabric, HalfOpenWorkerIsDeclaredDeadByLivenessAndTrialsRequeue) {
  const obs::RunManifest manifest = fabric_manifest();
  const std::vector<SweepPoint> points = synthetic_points(1, 2, 950);

  FabricOptions options;
  options.lease_ms = 10000;   // the lease deadline is far away...
  options.liveness_ms = 500;  // ...so death can only come from liveness
  options.lease_batch = 2;

  auto now = std::make_shared<std::atomic<std::uint64_t>>(1000);
  ManualListener listener;

  std::thread worker([&] {
    auto [coord_side, worker_side] = make_loopback_transport();
    listener.offer(std::move(coord_side));
    FabricMessage hello = make_message(FabricMessage::Type::kHello, 0);
    hello.session = 55;
    hello.seq = 1;
    send(*worker_side, hello);
    const std::optional<FabricMessage> welcome = next_message(*worker_side);
    ASSERT_TRUE(welcome.has_value());
    const std::optional<FabricMessage> lease = next_message(*worker_side);
    ASSERT_TRUE(lease.has_value());
    ASSERT_EQ(lease->type, FabricMessage::Type::kLease);
    ASSERT_EQ(lease->trials.size(), 2u);

    // Half-open: the worker goes silent but its connection never EOFs.
    // Advance past the liveness deadline; the coordinator must sever us.
    now->store(2003);  // 1003ms since the hello, liveness is 500
    while (!worker_side->closed()) {
      worker_side->wait_readable(10);
      std::string drained;
      while (worker_side->poll_line(&drained)) {
      }
    }
    // No worker ever comes back: after one more liveness window the
    // coordinator declares the sweep stranded instead of waiting forever.
    now->store(2604);
  });

  FabricCoordinator coordinator(manifest, options,
                                [now] { return now->load(); });
  const SweepReport report = coordinator.run(points, {}, &listener);
  worker.join();

  EXPECT_TRUE(report.interrupted);
  EXPECT_TRUE(report.points.empty());
  EXPECT_EQ(report.executed_trials, 0u);
  const FabricStats& stats = coordinator.stats();
  EXPECT_EQ(stats.liveness_deaths, 1u);
  EXPECT_EQ(stats.worker_deaths, 1u);  // a liveness death is a death
  EXPECT_EQ(stats.leases_expired, 1u);
  EXPECT_EQ(stats.trials_requeued, 2u);
}

// ---------------------------------------------------------------------------
// End-to-end over real TCP with chaos-decorated network workers
// ---------------------------------------------------------------------------

TEST(Fabric, TcpWorkersUnderWireChaosReproduceSweepRunnerByteForByte) {
  const obs::RunManifest manifest = fabric_manifest();
  // The trials carry a few ms of (result-neutral) work each: an instant
  // sweep can drain entirely before the severing worker's reconnect lands,
  // which would make the reconnect assertion below a coin flip on slow
  // hosts. ~60ms of serialized work guarantees the sweep is still running
  // when the redial (1-2ms backoff) arrives.
  std::vector<SweepPoint> points = synthetic_points(2, 10, 1100);
  for (SweepPoint& p : points) {
    auto inner = p.body;
    p.body = [inner](std::uint64_t seed, const TrialCancel* cancel) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      return inner(seed, cancel);
    };
  }

  SweepRunner control(manifest, ResilienceOptions{});
  const SweepReport expected = control.run(synthetic_points(2, 10, 1100), 2);

  FabricOptions options;
  options.lease_ms = 600;
  options.heartbeat_ms = 20;
  options.lease_batch = 2;

  TcpListener listener(parse_host_port("127.0.0.1:0"));
  const std::string addr = "127.0.0.1:" + std::to_string(listener.port());

  obs::MetricRegistry coord_metrics;
  options.metrics = &coord_metrics;
  FabricCoordinator coordinator(manifest, options);
  SweepReport report;
  std::thread coord([&] { report = coordinator.run(points, {}, &listener); });

  // Three real network workers: one under drop+dup+reorder wire chaos, one
  // clean, one with a forced deterministic mid-run sever (exactly one
  // reconnect). All dial the coordinator like `mtm_soak --connect` would.
  std::vector<std::thread> threads;
  std::vector<int> exit_codes(3, -1);
  for (std::size_t w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      FabricOptions wopts = options;
      wopts.metrics = nullptr;
      wopts.connect = addr;
      if (w == 0) {
        wopts.net_chaos.drop = 0.1;
        wopts.net_chaos.duplicate = 0.1;
        wopts.net_chaos.reorder = 0.1;
        wopts.net_chaos.seed = 21;
      } else if (w == 2) {
        // Severed holding a live lease (line 4 falls inside its second
        // lease); the near-instant redial must be transplanted back into
        // the same slot for the sweep to finish before that lease expires.
        wopts.net_chaos.sever_after = 4;
        wopts.net_chaos.seed = 22;
        wopts.net_backoff_ms = 1;
        wopts.net_backoff_max_ms = 2;
      }
      exit_codes[w] = run_fabric_net_worker(points, manifest, wopts);
    });
  }

  for (std::thread& t : threads) t.join();
  coord.join();

  EXPECT_EQ(exit_codes[0], 0);
  EXPECT_EQ(exit_codes[1], 0);
  EXPECT_EQ(exit_codes[2], 0);
  EXPECT_FALSE(report.interrupted);
  expect_same_results(report, expected);

  const FabricStats& stats = coordinator.stats();
  EXPECT_GE(stats.reconnects, 1u);  // worker 2's forced sever came back
  EXPECT_EQ(stats.leases_granted,
            stats.leases_completed + stats.leases_expired +
                stats.leases_aborted);
}

}  // namespace
}  // namespace mtm
