// SweepRunner: resume merges journaled trials byte-identically, watchdog
// deadlines retry then quarantine without stalling sibling trials, the
// interrupt token stops the sweep without journaling incomplete work, and
// journal seeds match the run_trials derivation.
#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace mtm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

obs::RunManifest sweep_manifest(std::uint64_t seed = 11) {
  obs::RunManifest manifest = obs::make_run_manifest("sweep_test", seed, 1);
  obs::JsonValue config = obs::JsonValue::object();
  config.set("kind", obs::JsonValue::string("synthetic"));
  manifest.config = std::move(config);
  return manifest;
}

/// Deterministic synthetic trial: every field a pure function of the seed,
/// so resumed and fresh executions are trivially comparable.
RunResult synthetic_result(std::uint64_t seed) {
  RunResult r;
  r.rounds = seed % 97 + 1;
  r.converged = true;
  r.rounds_after_last_activation = r.rounds;
  r.connections = seed % 31;
  r.proposals = seed % 17;
  return r;
}

std::vector<SweepPoint> synthetic_points(std::size_t points,
                                         std::size_t trials,
                                         std::uint64_t master) {
  std::vector<SweepPoint> out;
  for (std::size_t p = 0; p < points; ++p) {
    SweepPoint point;
    point.label = "p" + std::to_string(p);
    point.trials = trials;
    point.master_seed = master + p;
    point.body = [](std::uint64_t seed, const TrialCancel*) {
      return synthetic_result(seed);
    };
    out.push_back(std::move(point));
  }
  return out;
}

void expect_same_results(const SweepReport& a, const SweepReport& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    ASSERT_EQ(a.points[p].size(), b.points[p].size());
    for (std::size_t t = 0; t < a.points[p].size(); ++t) {
      const RunResult& x = a.points[p][t];
      const RunResult& y = b.points[p][t];
      EXPECT_EQ(x.rounds, y.rounds) << "point " << p << " trial " << t;
      EXPECT_EQ(x.converged, y.converged);
      EXPECT_EQ(x.connections, y.connections);
      EXPECT_EQ(x.proposals, y.proposals);
    }
  }
}

TEST(SweepRunner, RunsWithoutJournalAndMatchesTrialSeedDerivation) {
  SweepRunner runner(sweep_manifest(), ResilienceOptions{});
  std::vector<SweepPoint> points = synthetic_points(2, 4, 50);
  const SweepReport report = runner.run(points, 2);
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.executed_trials, 8u);
  EXPECT_EQ(report.resumed_trials, 0u);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t t = 0; t < 4; ++t) {
      // The exact derivation run_trials uses — a journaled trial and a
      // freshly run one can never disagree about what trial t means.
      EXPECT_EQ(report.points[p][t].rounds,
                synthetic_result(trial_seed(50 + p, t)).rounds);
    }
  }
}

TEST(SweepRunner, InterruptStopsEarlyAndResumeIsByteIdentical) {
  const std::string journal = temp_path("sweep_resume.jsonl");
  const obs::RunManifest manifest = sweep_manifest();

  // Control: one uninterrupted run, no journal.
  SweepRunner control(manifest, ResilienceOptions{});
  const SweepReport full = control.run(synthetic_points(3, 4, 100), 1);
  ASSERT_EQ(full.points.size(), 3u);

  // Interrupted run: the "user" hits Ctrl-C inside point 1, trial 2.
  CancelToken interrupt;
  std::atomic<std::size_t> executed{0};
  std::vector<SweepPoint> points = synthetic_points(3, 4, 100);
  for (SweepPoint& point : points) {
    point.body = [&](std::uint64_t seed, const TrialCancel* cancel) {
      if (executed.fetch_add(1) == 5) interrupt.cancel();
      if (cancel != nullptr && cancel->cancelled()) {
        RunResult r;
        r.cancelled = true;
        return r;
      }
      return synthetic_result(seed);
    };
  }
  ResilienceOptions interrupted_options;
  interrupted_options.journal_path = journal;
  interrupted_options.interrupt = &interrupt;
  SweepRunner interrupted(manifest, interrupted_options);
  const SweepReport partial = interrupted.run(points, 1);
  EXPECT_TRUE(partial.interrupted);
  ASSERT_LT(partial.points.size(), 3u);  // only fully completed points
  // The journal holds every COMPLETED trial and nothing half-done.
  const TrialJournal::Contents contents = TrialJournal::load(journal);
  EXPECT_GE(contents.records.size(), 4u);
  EXPECT_LT(contents.records.size(), 12u);

  // Resume: merged aggregates must be identical to the uninterrupted run.
  ResilienceOptions resume_options;
  resume_options.journal_path = journal;
  resume_options.resume = true;
  SweepRunner resumed(manifest, resume_options);
  const SweepReport rest = resumed.run(synthetic_points(3, 4, 100), 1);
  EXPECT_FALSE(rest.interrupted);
  EXPECT_EQ(rest.resumed_trials, contents.records.size());
  EXPECT_EQ(rest.resumed_trials + rest.executed_trials, 12u);
  expect_same_results(full, rest);
  std::remove(journal.c_str());
}

TEST(SweepRunner, DeadlineRetriesThenQuarantinesWithoutStallingSiblings) {
  const obs::RunManifest manifest = sweep_manifest();
  ResilienceOptions options;
  options.trial_deadline_ms = 25;
  options.retries = 2;
  options.backoff_ms = 1;
  SweepRunner runner(manifest, options);

  const std::uint64_t master = 77;
  const std::uint64_t stuck_seed = trial_seed(master, 1);
  SweepPoint point;
  point.label = "quarantine";
  point.trials = 3;
  point.master_seed = master;
  point.body = [&](std::uint64_t seed, const TrialCancel* cancel) {
    if (seed == stuck_seed) {
      // A wedged trial: spins until the watchdog evicts it, every attempt.
      while (cancel == nullptr || !cancel->cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      RunResult r;
      r.cancelled = true;
      return r;
    }
    return synthetic_result(seed);
  };
  const SweepReport report = runner.run({point}, 2);
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_FALSE(report.interrupted);
  // Siblings completed normally around the stuck trial.
  EXPECT_TRUE(report.points[0][0].converged);
  EXPECT_TRUE(report.points[0][2].converged);
  // The stuck trial is censored, retried to exhaustion, and quarantined.
  EXPECT_FALSE(report.points[0][1].converged);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].seed, stuck_seed);
  EXPECT_EQ(report.quarantined[0].attempts, 3u);  // 1 initial + 2 retries
  EXPECT_EQ(report.retried_trials, 1u);
  EXPECT_EQ(report.quarantined_seeds(), std::vector<std::uint64_t>{stuck_seed});
}

TEST(SweepRunner, ResumedQuarantineIsNotReexecuted) {
  const std::string journal = temp_path("sweep_quarantine.jsonl");
  const obs::RunManifest manifest = sweep_manifest();
  {
    TrialJournal j = TrialJournal::create(journal, manifest);
    JournalRecord rec;
    rec.point = 0;
    rec.trial = 0;
    rec.seed = trial_seed(5, 0);
    rec.result.converged = false;
    rec.attempts = 3;
    rec.quarantined = true;
    j.append(rec);
  }
  ResilienceOptions options;
  options.journal_path = journal;
  options.resume = true;
  SweepRunner runner(manifest, options);
  std::atomic<std::size_t> executed{0};
  SweepPoint point;
  point.trials = 2;
  point.master_seed = 5;
  point.body = [&](std::uint64_t seed, const TrialCancel*) {
    ++executed;
    return synthetic_result(seed);
  };
  const SweepReport report = runner.run({point}, 1);
  EXPECT_EQ(executed.load(), 1u);  // only the missing trial ran
  EXPECT_EQ(report.resumed_trials, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].attempts, 3u);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace mtm
