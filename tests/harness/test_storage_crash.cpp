// Crash-point enumeration: a journaled sweep is run through FaultyStorage
// and "power-lossed" after every single storage op N; the materialized
// durable state is then resumed (or diagnosably rejected and re-run) and
// the merged aggregates must be byte-identical to an uninterrupted control.
// There is no crash point — not even inside the atomic header rewrite or
// the rename-before-dir-fsync window — where the journal silently corrupts.
//
// Also holds the satellite regressions: ENOSPC/EIO during append must
// surface as JournalError naming the path (the old code dropped the record
// on the floor and kept going).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/checkpoint.hpp"
#include "harness/storage.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"

namespace mtm {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

obs::RunManifest sweep_manifest(std::uint64_t seed = 11) {
  obs::RunManifest manifest = obs::make_run_manifest("storage_crash_test",
                                                     seed, 1);
  obs::JsonValue config = obs::JsonValue::object();
  config.set("kind", obs::JsonValue::string("synthetic"));
  manifest.config = std::move(config);
  return manifest;
}

/// Deterministic synthetic trial: every field a pure function of the seed,
/// so a resumed and a fresh execution are trivially comparable.
RunResult synthetic_result(std::uint64_t seed) {
  RunResult r;
  r.rounds = seed % 97 + 1;
  r.converged = true;
  r.rounds_after_last_activation = r.rounds;
  r.connections = seed % 31;
  r.proposals = seed % 17;
  return r;
}

std::vector<SweepPoint> synthetic_points(std::size_t points,
                                         std::size_t trials,
                                         std::uint64_t master) {
  std::vector<SweepPoint> out;
  for (std::size_t p = 0; p < points; ++p) {
    SweepPoint point;
    point.label = "p" + std::to_string(p);
    point.trials = trials;
    point.master_seed = master + p;
    point.body = [](std::uint64_t seed, const TrialCancel*) {
      return synthetic_result(seed);
    };
    out.push_back(std::move(point));
  }
  return out;
}

void expect_same_results(const SweepReport& a, const SweepReport& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    ASSERT_EQ(a.points[p].size(), b.points[p].size());
    for (std::size_t t = 0; t < a.points[p].size(); ++t) {
      const RunResult& x = a.points[p][t];
      const RunResult& y = b.points[p][t];
      EXPECT_EQ(x.rounds, y.rounds) << "point " << p << " trial " << t;
      EXPECT_EQ(x.converged, y.converged);
      EXPECT_EQ(x.connections, y.connections);
      EXPECT_EQ(x.proposals, y.proposals);
    }
  }
}

constexpr std::size_t kPoints = 2;
constexpr std::size_t kTrials = 4;
constexpr std::uint64_t kMaster = 400;

TEST(StorageCrashEnumeration, EveryCrashPointResumesByteIdentically) {
  // Control: the same sweep, uninterrupted, no journal.
  SweepRunner control_runner(sweep_manifest(), ResilienceOptions{});
  const SweepReport control =
      control_runner.run(synthetic_points(kPoints, kTrials, kMaster), 1);

  // Probe: one fault-free pass through the op-counting decorator to learn
  // the total op count M of the full journaled run.
  std::uint64_t total_ops = 0;
  {
    const std::string journal = temp_path("crash_enum_probe.jsonl");
    FaultyStorage probe(default_storage(), StorageFaultConfig{});
    ResilienceOptions options;
    options.journal_path = journal;
    options.storage = &probe;
    SweepRunner runner(sweep_manifest(), options);
    const SweepReport probed =
        runner.run(synthetic_points(kPoints, kTrials, kMaster), 1);
    expect_same_results(control, probed);
    total_ops = probe.op_count();
  }
  ASSERT_GE(total_ops, 10u) << "suspiciously few storage ops to enumerate";

  // Enumerate: crash after every op prefix, materialize the durable state,
  // then resume. A journal the crash left unusable must announce itself as
  // JournalError (then a fresh run replaces it) — silence is the only
  // forbidden outcome.
  for (std::uint64_t n = 1; n <= total_ops; ++n) {
    const std::string journal =
        temp_path("crash_enum_" + std::to_string(n) + ".jsonl");
    StorageFaultConfig config;
    config.crash_after = n;
    FaultyStorage faulty(default_storage(), config);
    bool crashed = false;
    try {
      ResilienceOptions options;
      options.journal_path = journal;
      options.storage = &faulty;
      SweepRunner runner(sweep_manifest(), options);
      const SweepReport report =
          runner.run(synthetic_points(kPoints, kTrials, kMaster), 1);
      // n == total_ops: the run finishes before the crash point arms.
      expect_same_results(control, report);
    } catch (const StorageCrash&) {
      crashed = true;
    }
    if (!crashed) continue;
    faulty.materialize_crash();

    SweepReport resumed;
    try {
      ResilienceOptions options;
      options.journal_path = journal;
      options.resume = true;
      SweepRunner runner(sweep_manifest(), options);
      resumed = runner.run(synthetic_points(kPoints, kTrials, kMaster), 1);
    } catch (const JournalError&) {
      // The crash landed before the journal header became durable; the
      // leftover is diagnosably unusable, never silently wrong. Start over.
      ResilienceOptions options;
      options.journal_path = journal;
      SweepRunner runner(sweep_manifest(), options);
      resumed = runner.run(synthetic_points(kPoints, kTrials, kMaster), 1);
    }
    expect_same_results(control, resumed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "aggregates diverged after crash point " << n << " of "
             << total_ops;
    }
  }
}

TEST(StorageCrashEnumeration, FsyncPolicyControlsAppendDurabilityCost) {
  // record fsyncs every append, batch:4 every 4th, none never (only the
  // atomic header/checkpoint rewrites fsync). The storage.fsyncs counter
  // must reflect exactly that ordering — it is how an operator verifies the
  // --journal-fsync knob actually reached the disk.
  const auto fsyncs_with = [](const char* policy, const char* name) {
    obs::MetricRegistry metrics;
    FaultyStorage storage(default_storage(), StorageFaultConfig{}, &metrics);
    ResilienceOptions options;
    options.journal_path = temp_path(name);
    options.storage = &storage;
    options.journal_fsync = parse_journal_fsync_policy(policy);
    SweepRunner runner(sweep_manifest(), options);
    runner.run(synthetic_points(kPoints, kTrials, kMaster), 1);
    return metrics.counter("storage.fsyncs").value();
  };
  const std::uint64_t record = fsyncs_with("record", "policy_record.jsonl");
  const std::uint64_t batch = fsyncs_with("batch:4", "policy_batch.jsonl");
  const std::uint64_t none = fsyncs_with("none", "policy_none.jsonl");
  EXPECT_GT(record, batch);
  EXPECT_GT(batch, none);
}

TEST(JournalDurability, EnospcAppendThrowsJournalErrorNamingThePath) {
  // Regression (the old TrialJournal::append dropped the record silently on
  // a full disk): appends past the byte budget must throw JournalError and
  // the message must name the journal so the operator knows which file to
  // make room for.
  const std::string journal = temp_path("enospc_regression.jsonl");
  StorageFaultConfig config;
  config.enospc_after = 4000;  // room for the header + a few records
  FaultyStorage faulty(default_storage(), config);

  TrialJournal trial_journal = TrialJournal::create(
      journal, sweep_manifest(), &faulty, parse_journal_fsync_policy("none"));
  bool threw = false;
  for (std::uint64_t t = 0; t < 1000 && !threw; ++t) {
    JournalRecord record;
    record.point = 0;
    record.trial = t;
    record.seed = trial_seed(kMaster, t);
    record.result = synthetic_result(record.seed);
    record.attempts = 1;
    try {
      trial_journal.append(record);
    } catch (const JournalError& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find(journal), std::string::npos)
          << "JournalError must name the journal path: " << e.what();
    }
  }
  EXPECT_TRUE(threw) << "appends past the ENOSPC budget never failed";
}

TEST(JournalDurability, EioAppendThrowsJournalErrorNamingThePath) {
  const std::string journal = temp_path("eio_regression.jsonl");
  StorageFaultConfig config;
  config.eio = 0.999999999999;
  FaultyStorage faulty(default_storage(), config);
  // The header write goes through write_text_atomic, which reports injected
  // I/O failure as a clean create error — also loud, also named.
  try {
    TrialJournal::create(journal, sweep_manifest(), &faulty);
    FAIL() << "expected JournalError from the failed header write";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find(journal), std::string::npos);
  }
}

}  // namespace
}  // namespace mtm
