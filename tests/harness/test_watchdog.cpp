// TrialWatchdog: deadlines cancel armed leases, disarm prevents firing,
// slots are pooled across sequential leases, and a disabled watchdog hands
// out inert leases.
#include "harness/watchdog.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace mtm {
namespace {

TEST(TrialWatchdog, DisabledWatchdogHandsOutInertLeases) {
  TrialWatchdog watchdog(WatchdogOptions{0, 1});
  EXPECT_FALSE(watchdog.enabled());
  TrialWatchdog::Lease lease = watchdog.arm();
  EXPECT_EQ(lease.token(), nullptr);
  EXPECT_FALSE(lease.expired());
}

TEST(TrialWatchdog, DeadlineCancelsTheToken) {
  TrialWatchdog watchdog(WatchdogOptions{/*deadline_ms=*/20, /*poll_ms=*/2});
  TrialWatchdog::Lease lease = watchdog.arm();
  ASSERT_NE(lease.token(), nullptr);
  EXPECT_FALSE(lease.token()->cancelled());
  // Poll like a trial would; generous bound so slow CI cannot flake.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!lease.expired() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(lease.expired());
}

TEST(TrialWatchdog, DisarmedLeaseNeverFires) {
  TrialWatchdog watchdog(WatchdogOptions{/*deadline_ms=*/10, /*poll_ms=*/2});
  { TrialWatchdog::Lease lease = watchdog.arm(); }  // disarmed immediately
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // A fresh lease reuses the pooled slot; its token must have been reset
  // even though the old deadline has long passed.
  TrialWatchdog::Lease lease = watchdog.arm();
  ASSERT_NE(lease.token(), nullptr);
  EXPECT_FALSE(lease.token()->cancelled());
}

TEST(TrialWatchdog, MoveTransfersOwnership) {
  TrialWatchdog watchdog(WatchdogOptions{/*deadline_ms=*/5000, /*poll_ms=*/5});
  TrialWatchdog::Lease a = watchdog.arm();
  const CancelToken* token = a.token();
  TrialWatchdog::Lease b = std::move(a);
  EXPECT_EQ(a.token(), nullptr);  // NOLINT(bugprone-use-after-move): contract
  EXPECT_EQ(b.token(), token);
}

TEST(TrialWatchdog, ConcurrentLeasesGetIndependentTokens) {
  TrialWatchdog watchdog(WatchdogOptions{/*deadline_ms=*/5000, /*poll_ms=*/5});
  TrialWatchdog::Lease a = watchdog.arm();
  TrialWatchdog::Lease b = watchdog.arm();
  EXPECT_NE(a.token(), b.token());
}

}  // namespace
}  // namespace mtm
