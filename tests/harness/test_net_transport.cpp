// Network transport stack: host:port parsing, the StreamTransport
// wait_readable EINTR/POLLHUP regression, TCP listener/dialer round-trips
// on 127.0.0.1, deterministic dial backoff, and the FaultyTransport wire
// fault decorator (bit-identical schedules per seed, truncations always
// caught by the journal-record parse, every fault counted).
#include "harness/net_transport.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/assert.hpp"
#include "harness/checkpoint.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"

namespace mtm {
namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// parse_host_port
// ---------------------------------------------------------------------------

TEST(ParseHostPort, AcceptsHostColonPortIncludingEphemeralZero) {
  const HostPort a = parse_host_port("127.0.0.1:7700");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 7700);
  const HostPort b = parse_host_port("0.0.0.0:0");
  EXPECT_EQ(b.host, "0.0.0.0");
  EXPECT_EQ(b.port, 0);
  EXPECT_EQ(parse_host_port("localhost:65535").port, 65535);
}

TEST(ParseHostPort, RejectsMissingPartsAndBadPorts) {
  EXPECT_THROW(parse_host_port("127.0.0.1"), TransportError);
  EXPECT_THROW(parse_host_port(":7700"), TransportError);
  EXPECT_THROW(parse_host_port("host:"), TransportError);
  EXPECT_THROW(parse_host_port("host:port"), TransportError);
  EXPECT_THROW(parse_host_port("host:65536"), TransportError);
  EXPECT_THROW(parse_host_port("host:-1"), TransportError);
}

// ---------------------------------------------------------------------------
// StreamTransport wait_readable (EINTR / hangup regression)
// ---------------------------------------------------------------------------

void noop_handler(int) {}

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    // fds handed to a StreamTransport are owned (and closed) by it.
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  int take(int side) {
    const int fd = fds[side];
    fds[side] = -1;
    return fd;
  }
};

TEST(StreamTransport, WaitReadableSurvivesEintrUntilDataArrives) {
  // Regression: the old implementation returned poll() > 0 directly, so a
  // signal landing mid-wait (SIGCHLD from a dying worker) turned into a
  // spurious timeout — and a caller sleeping out a long deadline would
  // never see data that arrived right after the signal.
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = noop_handler;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair pair;
  StreamTransport transport(pair.take(0));
  const int peer = pair.take(1);
  const pthread_t waiter = ::pthread_self();

  std::thread prodder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::pthread_kill(waiter, SIGUSR1);  // interrupts the poll
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(::write(peer, "ping\n", 5), 5);
  });

  const std::uint64_t start = now_ms();
  EXPECT_TRUE(transport.wait_readable(5000));
  EXPECT_LT(now_ms() - start, 4000u);  // data, not the timeout, woke us
  prodder.join();
  std::string line;
  ASSERT_TRUE(transport.poll_line(&line));
  EXPECT_EQ(line, "ping");
  ::close(peer);
  ::sigaction(SIGUSR1, &old, nullptr);
}

TEST(StreamTransport, WaitReadableHonorsTotalTimeoutAcrossEintr) {
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = noop_handler;
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair pair;
  StreamTransport transport(pair.take(0));
  const int peer = pair.take(1);
  const pthread_t waiter = ::pthread_self();

  std::atomic<bool> stop{false};
  std::thread prodder([&] {
    // A stream of interruptions must not extend (or abort) the deadline.
    while (!stop.load()) {
      ::pthread_kill(waiter, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  const std::uint64_t start = now_ms();
  EXPECT_FALSE(transport.wait_readable(80));  // pure timeout: no data
  const std::uint64_t elapsed = now_ms() - start;
  stop.store(true);
  prodder.join();
  EXPECT_GE(elapsed, 75u);
  EXPECT_LT(elapsed, 3000u);
  ::close(peer);
  ::sigaction(SIGUSR1, &old, nullptr);
}

TEST(StreamTransport, WaitReadableReportsPeerHangupImmediately) {
  SocketPair pair;
  StreamTransport transport(pair.take(0));
  const int peer = pair.take(1);
  ASSERT_EQ(::write(peer, "tail\n", 5), 5);
  ::close(peer);  // POLLHUP (+ pending data) from now on

  const std::uint64_t start = now_ms();
  EXPECT_TRUE(transport.wait_readable(5000));
  EXPECT_LT(now_ms() - start, 1000u);
  std::string line;
  ASSERT_TRUE(transport.poll_line(&line));
  EXPECT_EQ(line, "tail");
  EXPECT_TRUE(transport.closed());
}

// ---------------------------------------------------------------------------
// TCP listener / dialer
// ---------------------------------------------------------------------------

std::unique_ptr<Transport> accept_one(TcpListener& listener) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (std::unique_ptr<Transport> conn = listener.accept()) return conn;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return nullptr;
}

TEST(TcpTransport, LoopbackRoundTripOnEphemeralPort) {
  TcpListener listener(parse_host_port("127.0.0.1:0"));
  ASSERT_GT(listener.port(), 0);

  TcpConnectOptions dial;
  dial.attempts = 3;
  std::unique_ptr<Transport> client =
      tcp_connect(HostPort{"127.0.0.1", listener.port()}, dial);
  ASSERT_NE(client, nullptr);
  std::unique_ptr<Transport> server = accept_one(listener);
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE(client->send_line("hello over tcp"));
  ASSERT_TRUE(server->wait_readable(5000));
  std::string line;
  ASSERT_TRUE(server->poll_line(&line));
  EXPECT_EQ(line, "hello over tcp");

  ASSERT_TRUE(server->send_line("right back"));
  ASSERT_TRUE(client->wait_readable(5000));
  ASSERT_TRUE(client->poll_line(&line));
  EXPECT_EQ(line, "right back");

  // Severing one side surfaces as EOF on the other.
  client->sever();
  for (int spin = 0; spin < 2000 && !server->closed(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(server->closed());
}

TEST(TcpTransport, ConnectExhaustionReturnsNullWithDeterministicBackoff) {
  // Bind an ephemeral port, then close it: connecting there is refused.
  std::uint16_t dead_port = 0;
  {
    TcpListener scratch(parse_host_port("127.0.0.1:0"));
    dead_port = scratch.port();
  }
  const auto dial_and_record = [dead_port](std::uint64_t seed) {
    std::vector<std::uint64_t> sleeps;
    TcpConnectOptions dial;
    dial.attempts = 4;
    dial.backoff_ms = 10;
    dial.backoff_max_ms = 25;
    dial.jitter_seed = seed;
    dial.sleep_ms = [&sleeps](std::uint64_t ms) { sleeps.push_back(ms); };
    EXPECT_EQ(tcp_connect(HostPort{"127.0.0.1", dead_port}, dial), nullptr);
    return sleeps;
  };

  const std::vector<std::uint64_t> first = dial_and_record(7);
  // attempts-1 backoffs; base doubles 10 -> 20 -> capped 25, plus jitter
  // in [0, base).
  ASSERT_EQ(first.size(), 3u);
  EXPECT_GE(first[0], 10u);
  EXPECT_LT(first[0], 20u);
  EXPECT_GE(first[1], 20u);
  EXPECT_LT(first[1], 40u);
  EXPECT_GE(first[2], 25u);
  EXPECT_LT(first[2], 50u);
  // The jitter stream is seeded: the schedule replays bit-identically.
  EXPECT_EQ(dial_and_record(7), first);
  EXPECT_NE(dial_and_record(8), first);
}

// ---------------------------------------------------------------------------
// FaultyTransport
// ---------------------------------------------------------------------------

/// Send-side recorder: captures exactly what the decorator delivers.
class RecordingTransport final : public Transport {
 public:
  bool send_line(const std::string& line) override {
    sent.push_back(line);
    return !severed;
  }
  bool poll_line(std::string*) override { return false; }
  bool wait_readable(int) override { return false; }
  bool closed() override { return severed; }
  void sever() override { severed = true; }
  int fd() const override { return -1; }

  std::vector<std::string> sent;
  bool severed = false;
};

WireFaultConfig chaos_config(std::uint64_t seed) {
  WireFaultConfig cfg;
  cfg.drop = 0.15;
  cfg.truncate = 0.15;
  cfg.reorder = 0.15;
  cfg.duplicate = 0.15;
  cfg.delay_ms = 20;
  cfg.seed = seed;
  return cfg;
}

/// Runs `lines` through a FaultyTransport over a fake clock and returns
/// what reached the wire (decorator flushed via sever at the end).
std::pair<std::vector<std::string>, WireFaultCounts> run_schedule(
    const WireFaultConfig& cfg, const std::vector<std::string>& lines,
    obs::MetricRegistry* metrics = nullptr) {
  auto inner = std::make_unique<RecordingTransport>();
  RecordingTransport* recorder = inner.get();
  auto clock_value = std::make_shared<std::uint64_t>(1000);
  FaultyTransport faulty(std::move(inner), cfg, metrics,
                         [clock_value] { return *clock_value; });
  for (const std::string& line : lines) {
    (void)faulty.send_line(line);
    *clock_value += 7;  // fake time marches; delayed lines come due
  }
  const WireFaultCounts counts = faulty.counts();
  faulty.sever();  // flush every held/delayed line
  return {recorder->sent, counts};
}

TEST(FaultyTransport, SameSeedProducesBitIdenticalSchedules) {
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back("line payload number " + std::to_string(i));
  }
  const auto [wire_a, counts_a] = run_schedule(chaos_config(42), lines);
  const auto [wire_b, counts_b] = run_schedule(chaos_config(42), lines);
  EXPECT_EQ(wire_a, wire_b);
  EXPECT_EQ(counts_a.lines, 200u);
  EXPECT_EQ(counts_a.dropped, counts_b.dropped);
  EXPECT_EQ(counts_a.truncated, counts_b.truncated);
  EXPECT_EQ(counts_a.reordered, counts_b.reordered);
  EXPECT_EQ(counts_a.duplicated, counts_b.duplicated);
  EXPECT_EQ(counts_a.delayed, counts_b.delayed);
  // Every fault class actually fired at these rates over 200 lines.
  EXPECT_GT(counts_a.dropped, 0u);
  EXPECT_GT(counts_a.truncated, 0u);
  EXPECT_GT(counts_a.reordered, 0u);
  EXPECT_GT(counts_a.duplicated, 0u);
  EXPECT_GT(counts_a.delayed, 0u);
  // Nothing vanished except the drops: delivered >= offered - dropped
  // (duplicates add lines on top).
  EXPECT_GE(wire_a.size(), lines.size() - counts_a.dropped);

  const auto [wire_c, counts_c] = run_schedule(chaos_config(43), lines);
  EXPECT_NE(wire_a, wire_c);  // a different seed is a different schedule
  (void)counts_c;
}

TEST(FaultyTransport, TruncatedRecordLinesAlwaysFailTheJournalParse) {
  // The wire payload workers actually send: a checksummed journal record.
  JournalRecord rec;
  rec.point = 3;
  rec.trial = 9;
  rec.seed = 12345;
  rec.attempts = 1;
  rec.result.rounds = 17;
  rec.result.converged = true;
  const std::string line = journal_record_line(rec);

  WireFaultConfig cfg;
  cfg.truncate = 0.9;
  cfg.seed = 5;
  const auto [wire, counts] =
      run_schedule(cfg, std::vector<std::string>(60, line));
  ASSERT_GT(counts.truncated, 0u);
  std::uint64_t rejected = 0;
  for (const std::string& delivered : wire) {
    if (delivered == line) {
      EXPECT_NO_THROW(parse_journal_record(delivered));
    } else {
      // Any cut, anywhere in the line, must be caught — the record's
      // checksum/parse is the fabric's CRC against mid-line truncation.
      EXPECT_THROW(parse_journal_record(delivered), JournalError);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, counts.truncated);
}

TEST(FaultyTransport, SeverAfterSeversExactlyOnceAtTheConfiguredLine) {
  auto inner = std::make_unique<RecordingTransport>();
  RecordingTransport* recorder = inner.get();
  WireFaultConfig cfg;
  cfg.sever_after = 3;
  FaultyTransport faulty(std::move(inner), cfg, nullptr, [] {
    return std::uint64_t{0};
  });
  EXPECT_TRUE(faulty.send_line("one"));
  EXPECT_TRUE(faulty.send_line("two"));
  EXPECT_FALSE(faulty.send_line("three"));  // trigger line: sent, then cut
  EXPECT_FALSE(faulty.send_line("four"));   // dead thereafter
  EXPECT_TRUE(recorder->severed);
  EXPECT_EQ(faulty.counts().severed, 1u);
  ASSERT_EQ(recorder->sent.size(), 3u);
  EXPECT_EQ(recorder->sent[2], "three");
}

TEST(FaultyTransport, ExportsEveryFaultToMetricsRegistry) {
  obs::MetricRegistry metrics;
  std::vector<std::string> lines;
  for (int i = 0; i < 150; ++i) {
    lines.push_back("metric probe " + std::to_string(i));
  }
  const auto [wire, counts] = run_schedule(chaos_config(9), lines, &metrics);
  (void)wire;
  EXPECT_EQ(metrics.counter("fabric.net.lines").value(), counts.lines);
  EXPECT_EQ(metrics.counter("fabric.net.dropped").value(), counts.dropped);
  EXPECT_EQ(metrics.counter("fabric.net.truncated").value(),
            counts.truncated);
  EXPECT_EQ(metrics.counter("fabric.net.reordered").value(),
            counts.reordered);
  EXPECT_EQ(metrics.counter("fabric.net.duplicated").value(),
            counts.duplicated);
  EXPECT_EQ(metrics.counter("fabric.net.delayed").value(), counts.delayed);
}

TEST(FaultyTransport, RejectsProbabilityOutsideHalfOpenUnitInterval) {
  WireFaultConfig cfg;
  cfg.drop = 1.0;  // would loop forever: every line vanishes
  EXPECT_THROW(
      FaultyTransport(std::make_unique<RecordingTransport>(), cfg),
      ContractError);
  cfg.drop = 0.0;
  cfg.truncate = -0.1;
  EXPECT_THROW(
      FaultyTransport(std::make_unique<RecordingTransport>(), cfg),
      ContractError);
}

}  // namespace
}  // namespace mtm
