#include "protocols/round_robin_gossip.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(RoundRobinGossip, ElectsMinimumOnClique) {
  StaticGraphProvider topo(make_clique(12));
  RoundRobinGossip proto(BlindGossip::shuffled_uids(12, 1));
  EngineConfig cfg;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 100000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 12; ++u) {
    EXPECT_EQ(proto.leader_of(u), proto.target_leader());
  }
}

TEST(RoundRobinGossip, ElectsOnBipartiteParityGraph) {
  // On C_n the parity rule splits senders/receivers alternately; ensure no
  // starvation on an even cycle (a bipartite graph where parity classes
  // coincide with the bipartition is the adversarial case).
  StaticGraphProvider topo(make_cycle(12));
  RoundRobinGossip proto(BlindGossip::shuffled_uids(12, 2));
  EngineConfig cfg;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  EXPECT_TRUE(r.converged);
}

TEST(RoundRobinGossip, DecisionIsDeterministic) {
  // Same node, same round, same view -> same decision regardless of rng.
  RoundRobinGossip proto(BlindGossip::shuffled_uids(4, 3));
  StaticGraphProvider topo(make_clique(4));
  Engine engine(topo, proto, EngineConfig{});
  std::vector<NeighborInfo> view{{1, 0}, {2, 0}, {3, 0}};
  Rng a(1), b(999);
  // Fresh protocol state per decide call comparison: cursor advances, so
  // compare two separately-initialized instances.
  RoundRobinGossip p1(BlindGossip::shuffled_uids(4, 3));
  RoundRobinGossip p2(BlindGossip::shuffled_uids(4, 3));
  StaticGraphProvider t1(make_clique(4)), t2(make_clique(4));
  Engine e1(t1, p1, EngineConfig{}), e2(t2, p2, EngineConfig{});
  for (Round r = 2; r <= 8; r += 2) {  // rounds where node 0 sends
    const Decision d1 = p1.decide(0, r, view, a);
    const Decision d2 = p2.decide(0, r, view, b);
    EXPECT_EQ(d1.is_send(), d2.is_send());
    if (d1.is_send()) {
      EXPECT_EQ(d1.target, d2.target);
    }
  }
}

TEST(RoundRobinGossip, ParityAlternation) {
  RoundRobinGossip proto(BlindGossip::shuffled_uids(4, 4));
  StaticGraphProvider topo(make_clique(4));
  Engine engine(topo, proto, EngineConfig{});
  std::vector<NeighborInfo> view{{1, 0}, {2, 0}, {3, 0}};
  Rng rng(1);
  // Node 0: sends on even rounds, receives on odd.
  EXPECT_FALSE(proto.decide(0, 1, view, rng).is_send());
  EXPECT_TRUE(proto.decide(0, 2, view, rng).is_send());
  // Node 1: opposite parity.
  EXPECT_TRUE(proto.decide(1, 1, view, rng).is_send());
  EXPECT_FALSE(proto.decide(1, 2, view, rng).is_send());
}

TEST(RoundRobinGossip, CursorCyclesThroughNeighbors) {
  RoundRobinGossip proto(BlindGossip::shuffled_uids(5, 5));
  StaticGraphProvider topo(make_clique(5));
  Engine engine(topo, proto, EngineConfig{});
  std::vector<NeighborInfo> view{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  Rng rng(1);
  std::vector<NodeId> targets;
  for (Round r = 2; r <= 8; r += 2) {
    const Decision d = proto.decide(0, r, view, rng);
    ASSERT_TRUE(d.is_send());
    targets.push_back(d.target);
  }
  EXPECT_EQ(targets, (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(RoundRobinGossip, ComparableToBlindGossipOnClique) {
  // The derandomized variant should be in the same ballpark as blind gossip
  // on a symmetric topology (randomization is not load-bearing there).
  const NodeId n = 16;
  auto measure = [&](auto&& make_proto) {
    double total = 0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      StaticGraphProvider topo(make_clique(n));
      auto proto = make_proto(seed);
      EngineConfig cfg;
      cfg.seed = seed;
      Engine engine(topo, *proto, cfg);
      total += static_cast<double>(
          run_until_stabilized(engine, 1000000).rounds);
    }
    return total / 6.0;
  };
  const double rr = measure([&](std::uint64_t s) {
    return std::make_unique<RoundRobinGossip>(BlindGossip::shuffled_uids(n, s));
  });
  const double blind = measure([&](std::uint64_t s) {
    return std::make_unique<BlindGossip>(BlindGossip::shuffled_uids(n, s));
  });
  EXPECT_LT(rr, 5.0 * blind);
  EXPECT_LT(blind, 5.0 * rr);
}

TEST(RoundRobinGossip, ValidatesUids) {
  EXPECT_THROW(RoundRobinGossip({}), ContractError);
  EXPECT_THROW(RoundRobinGossip({1, 1}), ContractError);
}

}  // namespace
}  // namespace mtm
