#include "protocols/ppush.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/push_pull.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(Ppush, SpreadsOnClique) {
  StaticGraphProvider topo(make_clique(20));
  Ppush proto({0});
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 10000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 20; ++u) EXPECT_TRUE(proto.informed(u));
}

TEST(Ppush, RequiresTagBitOne) {
  // With b = 0 the engine rejects the 1-bit advertisement of an uninformed
  // node: PPUSH genuinely needs b = 1.
  StaticGraphProvider topo(make_clique(4));
  Ppush proto({0});
  Engine engine(topo, proto, EngineConfig{});  // tag_bits = 0
  EXPECT_THROW(engine.step(), ContractError);
}

TEST(Ppush, InformedAdvertiseZeroUninformedOne) {
  StaticGraphProvider topo(make_path(3));
  Ppush proto({1});
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  Rng dummy(1);
  EXPECT_EQ(proto.advertise(1, 1, dummy), Ppush::kInformedTag);
  EXPECT_EQ(proto.advertise(0, 1, dummy), Ppush::kUninformedTag);
}

TEST(Ppush, UninformedNeverProposes) {
  StaticGraphProvider topo(make_clique(6));
  Ppush proto({0});
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  // decide() for an uninformed node is always receive.
  Rng rng(1);
  std::vector<NeighborInfo> view{{0, Ppush::kInformedTag}};
  const Decision d = proto.decide(3, 1, view, rng);
  EXPECT_FALSE(d.is_send());
}

TEST(Ppush, InformedTargetsOnlyUninformedTags) {
  Ppush proto({0});
  StaticGraphProvider topo(make_clique(4));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  Rng rng(2);
  // All neighbors informed -> no proposal.
  std::vector<NeighborInfo> informed_view{{1, Ppush::kInformedTag},
                                          {2, Ppush::kInformedTag}};
  EXPECT_FALSE(proto.decide(0, 1, informed_view, rng).is_send());
  // Mixed view -> must target an uninformed-tagged neighbor.
  std::vector<NeighborInfo> mixed{{1, Ppush::kInformedTag},
                                  {2, Ppush::kUninformedTag},
                                  {3, Ppush::kUninformedTag}};
  for (int i = 0; i < 20; ++i) {
    const Decision d = proto.decide(0, 1, mixed, rng);
    ASSERT_TRUE(d.is_send());
    EXPECT_NE(d.target, 1u);
  }
}

TEST(Ppush, FasterThanPushPullOnStarLine) {
  // The headline b=0 vs b=1 gap (paper Sections V–VI): on the star-line,
  // PPUSH avoids the Δ² proposal lottery and spreads much faster.
  const Graph g = make_star_line(6, 8);
  const NodeId n = g.node_count();
  auto run_ppush = [&](std::uint64_t seed) {
    StaticGraphProvider topo(g);
    Ppush proto({0});
    EngineConfig cfg;
    cfg.tag_bits = 1;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 1000000).rounds;
  };
  auto run_pushpull = [&](std::uint64_t seed) {
    StaticGraphProvider topo(g);
    PushPull proto({0});
    EngineConfig cfg;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 1000000).rounds;
  };
  double ppush_total = 0, pushpull_total = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    ppush_total += static_cast<double>(run_ppush(s));
    pushpull_total += static_cast<double>(run_pushpull(s));
  }
  (void)n;
  EXPECT_LT(ppush_total * 2, pushpull_total);  // at least 2x faster
}

TEST(Ppush, ValidatesSources) {
  EXPECT_THROW(Ppush({}), ContractError);
}

}  // namespace
}  // namespace mtm
