#include "protocols/bit_convergence.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/assert.hpp"
#include "core/bits.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

std::vector<Uid> BlindGossip_uids(NodeId n) {
  std::vector<Uid> uids(n);
  for (NodeId u = 0; u < n; ++u) uids[u] = u + 100;
  return uids;
}

BitConvergenceConfig config_for(NodeId n, NodeId delta) {
  BitConvergenceConfig cfg;
  cfg.network_size_bound = n;
  cfg.max_degree_bound = delta;
  return cfg;
}

TEST(BitConvergence, ParametersDerivedFromBounds) {
  BitConvergence proto(BlindGossip_uids(16), config_for(16, 8));
  EXPECT_EQ(proto.tag_bit_count(), 8);       // ceil(2 * log2(16))
  EXPECT_EQ(proto.group_length(), 6u);       // 2 * log2(8)
  EXPECT_EQ(proto.phase_length(), 48u);      // k * group
}

TEST(BitConvergence, ElectsMinimumPairOnClique) {
  StaticGraphProvider topo(make_clique(16));
  BitConvergence proto(BlindGossip_uids(16), config_for(16, 15));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  const IdPair target = proto.target_pair();
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(proto.leader_of(u), target.uid);
    EXPECT_EQ(proto.buffered_pair(u), target);
  }
}

TEST(BitConvergence, ElectsOnStarLine) {
  const Graph g = make_star_line(4, 4);
  StaticGraphProvider topo(g);
  BitConvergence proto(BlindGossip_uids(20), config_for(20, g.max_degree()));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  EXPECT_TRUE(r.converged);
}

TEST(BitConvergence, ElectsUnderTauOneChange) {
  Rng gen(7);
  RelabelingGraphProvider topo(make_random_regular(16, 4, gen), 1, 7);
  BitConvergence proto(BlindGossip_uids(16), config_for(16, 4));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 7;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  EXPECT_TRUE(r.converged);
}

TEST(BitConvergence, TagsUniqueAfterInit) {
  StaticGraphProvider topo(make_clique(32));
  BitConvergence proto(BlindGossip_uids(32), config_for(32, 31));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  std::set<Tag> tags;
  for (NodeId u = 0; u < 32; ++u) {
    tags.insert(proto.smallest_pair(u).tag);
  }
  EXPECT_EQ(tags.size(), 32u);
}

TEST(BitConvergence, AdvertisesBitOfPhaseLockedTag) {
  StaticGraphProvider topo(make_clique(8));
  BitConvergence proto(BlindGossip_uids(8), config_for(8, 7));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  Rng dummy(1);
  const int k = proto.tag_bit_count();
  const Round group = proto.group_length();
  // In group i (0-indexed), node 0 advertises bit i+1 (msb-first) of its tag.
  const Tag tag = proto.smallest_pair(0).tag;
  for (int i = 0; i < k; ++i) {
    const Round round_in_group_i = static_cast<Round>(i) * group + 1;
    const Tag advertised = proto.advertise(0, round_in_group_i, dummy);
    EXPECT_EQ(advertised,
              static_cast<Tag>(bit_at_msb(tag, i + 1, k)))
        << "group " << i;
  }
}

TEST(BitConvergence, ZeroBitNodesProposeToOneBitNeighbors) {
  StaticGraphProvider topo(make_clique(4));
  BitConvergence proto(BlindGossip_uids(4), config_for(4, 3));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  Rng rng(3);
  // Find a group where node 0's bit is 0.
  const int k = proto.tag_bit_count();
  const Tag tag = proto.smallest_pair(0).tag;
  for (int i = 0; i < k; ++i) {
    const Round round = static_cast<Round>(i) * proto.group_length() + 1;
    (void)proto.advertise(0, round, rng);
    std::vector<NeighborInfo> view{{1, 1}, {2, 0}, {3, 1}};
    const Decision d = proto.decide(0, round, view, rng);
    if (bit_at_msb(tag, i + 1, k) == 0) {
      ASSERT_TRUE(d.is_send());
      EXPECT_NE(d.target, 2u);  // never target a 0-advertiser
    } else {
      EXPECT_FALSE(d.is_send());
    }
  }
}

TEST(BitConvergence, LeaderOnlyChangesAtPhaseBoundaries) {
  StaticGraphProvider topo(make_clique(12));
  BitConvergence proto(BlindGossip_uids(12), config_for(12, 11));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  const Round phase = proto.phase_length();
  std::vector<Uid> leaders(12);
  for (NodeId u = 0; u < 12; ++u) leaders[u] = proto.leader_of(u);
  for (Round r = 1; r <= 4 * phase; ++r) {
    engine.step();
    if ((r - 1) % phase == 0) {
      // Phase boundary round: adoption may move leaders; resnapshot.
      for (NodeId u = 0; u < 12; ++u) leaders[u] = proto.leader_of(u);
    } else {
      // Mid-phase: leaders must not have moved since the last boundary.
      for (NodeId u = 0; u < 12; ++u) {
        EXPECT_EQ(proto.leader_of(u), leaders[u])
            << "leader changed mid-phase at round " << r;
      }
    }
  }
}

TEST(BitConvergence, BufferMonotoneNonIncreasing) {
  StaticGraphProvider topo(make_clique(10));
  BitConvergence proto(BlindGossip_uids(10), config_for(10, 9));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 6;
  Engine engine(topo, proto, cfg);
  std::vector<IdPair> prev(10);
  for (NodeId u = 0; u < 10; ++u) prev[u] = proto.buffered_pair(u);
  for (int round = 0; round < 300; ++round) {
    engine.step();
    for (NodeId u = 0; u < 10; ++u) {
      const IdPair cur = proto.buffered_pair(u);
      EXPECT_FALSE(prev[u] < cur) << "buffer increased";
      prev[u] = cur;
    }
  }
}

TEST(BitConvergence, ValidatesConfig) {
  EXPECT_THROW(BitConvergence({}, config_for(4, 3)), ContractError);
  EXPECT_THROW(BitConvergence({1, 1}, config_for(4, 3)), ContractError);
  BitConvergenceConfig bad = config_for(1, 3);  // N < n
  EXPECT_THROW(BitConvergence({1, 2}, bad), ContractError);
  bad = config_for(4, 0);
  EXPECT_THROW(BitConvergence({1, 2}, bad), ContractError);
  bad = config_for(4, 3);
  bad.beta = 0.5;
  EXPECT_THROW(BitConvergence({1, 2}, bad), ContractError);
}

TEST(BitConvergenceAblation, GroupLengthFactorScalesGroups) {
  auto cfg = config_for(16, 8);  // log2(8) = 3
  BitConvergence two(BlindGossip_uids(16), cfg);
  EXPECT_EQ(two.group_length(), 6u);
  cfg.group_length_factor = 1.0;
  BitConvergence one(BlindGossip_uids(16), cfg);
  EXPECT_EQ(one.group_length(), 3u);
  cfg.group_length_factor = 4.0;
  BitConvergence four(BlindGossip_uids(16), cfg);
  EXPECT_EQ(four.group_length(), 12u);
  cfg.group_length_factor = 0.5;
  EXPECT_THROW(BitConvergence(BlindGossip_uids(16), cfg), ContractError);
}

TEST(BitConvergenceAblation, ImmediateAdoptionStillConverges) {
  auto cfg = config_for(16, 15);
  cfg.phase_buffering = false;
  StaticGraphProvider topo(make_clique(16));
  BitConvergence proto(BlindGossip_uids(16), cfg);
  EngineConfig ecfg;
  ecfg.tag_bits = 1;
  ecfg.seed = 21;
  Engine engine(topo, proto, ecfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(proto.leader_of(u), proto.target_pair().uid);
  }
}

TEST(BitConvergenceAblation, ImmediateAdoptionMayMoveLeaderMidPhase) {
  auto cfg = config_for(12, 11);
  cfg.phase_buffering = false;
  StaticGraphProvider topo(make_clique(12));
  BitConvergence proto(BlindGossip_uids(12), cfg);
  EngineConfig ecfg;
  ecfg.tag_bits = 1;
  ecfg.seed = 22;
  Engine engine(topo, proto, ecfg);
  // With immediate adoption, smallest == buffer at all times.
  for (int round = 0; round < 100; ++round) {
    engine.step();
    for (NodeId u = 0; u < 12; ++u) {
      EXPECT_EQ(proto.smallest_pair(u), proto.buffered_pair(u));
      EXPECT_EQ(proto.leader_of(u), proto.smallest_pair(u).uid);
    }
  }
}

TEST(BitConvergence, RejectsAsyncActivationViaHarness) {
  // The Section VII algorithm assumes synchronized starts; the harness
  // enforces this (Section VIII covers the async case).
  // Direct protocol use with activations is the engine caller's
  // responsibility; here we check the harness-level guard exists.
  SUCCEED();  // guard tested in harness/test_experiment.cpp
}

}  // namespace
}  // namespace mtm
