#include "protocols/multibit_convergence.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/bit_convergence.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

std::vector<Uid> uids_for(NodeId n) {
  std::vector<Uid> uids(n);
  for (NodeId u = 0; u < n; ++u) uids[u] = 300 + u;
  return uids;
}

MultibitConvergenceConfig config_for(NodeId n, NodeId delta, int width) {
  MultibitConvergenceConfig cfg;
  cfg.network_size_bound = n;
  cfg.max_degree_bound = delta;
  cfg.advertisement_width = width;
  return cfg;
}

TEST(MultibitConvergence, BlockArithmetic) {
  // n = 16 -> k = 8 bits; width 3 -> 3 blocks of sizes 3, 3, 2.
  MultibitConvergence proto(uids_for(16), config_for(16, 8, 3));
  EXPECT_EQ(proto.tag_bit_count(), 8);
  EXPECT_EQ(proto.block_count(), 3);
  EXPECT_EQ(proto.phase_length(), 3u * proto.group_length());
  // tag 0b10110101: blocks (msb-first) 101, 101, 01.
  const Tag tag = 0b10110101;
  EXPECT_EQ(proto.block_value(tag, 1), 0b101u);
  EXPECT_EQ(proto.block_value(tag, 2), 0b101u);
  EXPECT_EQ(proto.block_value(tag, 3), 0b01u);
  EXPECT_THROW(proto.block_value(tag, 0), ContractError);
  EXPECT_THROW(proto.block_value(tag, 4), ContractError);
}

TEST(MultibitConvergence, WidthClampedToTagBits) {
  MultibitConvergence proto(uids_for(16), config_for(16, 8, 63));
  EXPECT_EQ(proto.advertisement_width(), proto.tag_bit_count());
  EXPECT_EQ(proto.block_count(), 1);
}

TEST(MultibitConvergence, WidthOneMatchesBitConvergenceSemantics) {
  // With width = 1 the decide() rule is exactly the paper's: 0-advertisers
  // propose to 1-advertisers, never the reverse.
  MultibitConvergence proto(uids_for(8), config_for(8, 7, 1));
  StaticGraphProvider topo(make_clique(8));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  Rng rng(1);
  const Tag my_bit =
      proto.block_value(proto.smallest_pair(0).tag, 1);
  std::vector<NeighborInfo> mixed{{1, 0}, {2, 1}};
  const Decision d = proto.decide(0, 1, mixed, rng);
  if (my_bit == 0) {
    ASSERT_TRUE(d.is_send());
    EXPECT_EQ(d.target, 2u);  // only the 1-advertiser is larger
  } else {
    EXPECT_FALSE(d.is_send());  // nothing larger than 1 exists
  }
}

class MultibitWidths : public ::testing::TestWithParam<int> {};

TEST_P(MultibitWidths, ElectsOnCliqueAndStarLine) {
  const int width = GetParam();
  for (auto&& [g, seed] : {std::pair{make_clique(12), 11ull},
                           std::pair{make_star_line(3, 3), 12ull}}) {
    const NodeId n = g.node_count();
    MultibitConvergence proto(uids_for(n),
                              config_for(n, g.max_degree(), width));
    StaticGraphProvider topo(g);
    EngineConfig cfg;
    cfg.tag_bits = width;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    const RunResult r = run_until_stabilized(engine, 1u << 22);
    ASSERT_TRUE(r.converged) << "width " << width;
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(proto.leader_of(u), proto.target_pair().uid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultibitWidths, ::testing::Values(1, 2, 4, 8));

TEST(MultibitConvergence, EngineEnforcesWidth) {
  // Advertising a 3-bit block needs tag_bits >= 3.
  MultibitConvergence proto(uids_for(8), config_for(8, 7, 3));
  StaticGraphProvider topo(make_clique(8));
  EngineConfig cfg;
  cfg.tag_bits = 1;  // too narrow
  Engine engine(topo, proto, cfg);
  // Some node will advertise a block value >= 2 within the first phase.
  EXPECT_THROW(
      {
        for (int i = 0; i < 200; ++i) engine.step();
      },
      ContractError);
}

TEST(MultibitConvergence, ElectsUnderTopologyChange) {
  Rng gen(13);
  RelabelingGraphProvider topo(make_random_regular(12, 4, gen), 1, 13);
  MultibitConvergence proto(uids_for(12), config_for(12, 4, 2));
  EngineConfig cfg;
  cfg.tag_bits = 2;
  cfg.seed = 13;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1u << 23);
  EXPECT_TRUE(r.converged);
}

TEST(MultibitConvergence, ValidatesConfig) {
  EXPECT_THROW(MultibitConvergence({}, config_for(4, 3, 1)), ContractError);
  EXPECT_THROW(MultibitConvergence(uids_for(4), config_for(4, 3, 0)),
               ContractError);
  EXPECT_THROW(MultibitConvergence(uids_for(4), config_for(4, 3, 64)),
               ContractError);
  EXPECT_THROW(MultibitConvergence(uids_for(4), config_for(2, 3, 1)),
               ContractError);
}

}  // namespace
}  // namespace mtm
