#include "protocols/stable_leader.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

EngineConfig stable_config(std::uint64_t seed) {
  EngineConfig cfg;
  cfg.tag_bits = 1;  // the heartbeat bit
  cfg.seed = seed;
  return cfg;
}

TEST(StableLeader, ElectsMinimumOnClique) {
  StaticGraphProvider topo(make_clique(16));
  StableLeader proto(BlindGossip::shuffled_uids(16, 1), 24);
  Engine engine(topo, proto, stable_config(1));
  const RunResult r = run_until_stabilized(engine, 100000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(proto.leader_of(u), 0u);  // shuffled_uids uses 0..n-1
    EXPECT_EQ(proto.epoch_of(u), 0u);   // healthy run: no re-election
  }
  EXPECT_EQ(proto.leader_node(), proto.leader_node());
  EXPECT_EQ(proto.leader_of(proto.leader_node()), 0u);
}

TEST(StableLeader, NoSpuriousReElectionWhenHealthy) {
  // With an epoch timeout comfortably above the election time, a faultless
  // execution must stay in epoch 0 forever (heartbeats + age gossip keep
  // every node's silence age below the timeout).
  StaticGraphProvider topo(make_clique(12));
  StableLeader proto(BlindGossip::shuffled_uids(12, 2), 30);
  Engine engine(topo, proto, stable_config(2));
  engine.run_rounds(400);
  EXPECT_TRUE(proto.stabilized());
  EXPECT_EQ(proto.current_epoch(), 0u);
}

TEST(StableLeader, ReElectsAfterOracleKillsLeader) {
  // THE self-healing regression: the adversarial oracle kills the elected
  // leader; the network must detect the silence within the epoch timeout,
  // bump the epoch, and elect the minimum-UID survivor.
  constexpr NodeId kN = 16;
  constexpr Round kTimeout = 12;
  constexpr Round kKillRound = 48;
  StaticGraphProvider topo(make_clique(kN));
  StableLeader proto(BlindGossip::shuffled_uids(kN, 7), kTimeout);
  EngineConfig cfg = stable_config(7);
  cfg.faults.targeting = CrashTargeting::kLeaderNode;
  cfg.faults.target_start = kKillRound;
  cfg.faults.target_every = Round{1} << 40;  // exactly one kill
  cfg.faults.seed = 99;
  Engine engine(topo, proto, cfg);

  engine.run_rounds(kKillRound - 1);
  ASSERT_TRUE(proto.stabilized()) << "election must settle before the kill";
  const NodeId old_leader = proto.leader_node();
  ASSERT_NE(old_leader, kNoNode);

  engine.step();  // round kKillRound: the oracle fires
  EXPECT_TRUE(proto.crashed(old_leader));
  EXPECT_FALSE(proto.stabilized()) << "a dead leader un-stabilizes the run";
  EXPECT_EQ(engine.telemetry().crashes(), 1u);

  // Re-stabilization budget: the survivors age out the dead leader in
  // kTimeout + 1 rounds, then re-run the election (O(log n) on a clique
  // w.h.p.; 4x slack keeps the seeded run far from the boundary).
  Round extra = 0;
  const Round budget = kTimeout + 1 + 4 * 16;
  while (!proto.stabilized() && extra < budget) {
    engine.step();
    ++extra;
  }
  ASSERT_TRUE(proto.stabilized())
      << "no re-election within " << budget << " rounds of the kill";
  EXPECT_GT(extra, kTimeout) << "re-election cannot beat the silence timeout";
  EXPECT_GE(proto.current_epoch(), 1u);
  const NodeId new_leader = proto.leader_node();
  ASSERT_NE(new_leader, kNoNode);
  EXPECT_NE(new_leader, old_leader);
  EXPECT_FALSE(proto.crashed(new_leader));
  // The dead leader held UID 0, so the survivors elect UID 1's owner.
  for (NodeId u = 0; u < kN; ++u) {
    if (!proto.crashed(u)) {
      EXPECT_EQ(proto.leader_of(u), 1u);
    }
  }
}

TEST(StableLeader, InstantRecoveryAvoidsEpochBump) {
  // If the killed leader recovers before anyone times out, its own UID is
  // still the global minimum: on_restart re-enters it as a candidate and
  // the network re-converges in epoch 0 — no re-election needed.
  constexpr Round kKillRound = 48;
  StaticGraphProvider topo(make_clique(12));
  StableLeader proto(BlindGossip::shuffled_uids(12, 3), 24);
  EngineConfig cfg = stable_config(3);
  cfg.faults.targeting = CrashTargeting::kLeaderNode;
  cfg.faults.target_start = kKillRound;
  cfg.faults.target_every = Round{1} << 40;
  cfg.faults.recovery_prob = 1.0;  // revived on the very next round
  cfg.faults.seed = 17;
  Engine engine(topo, proto, cfg);
  engine.run_rounds(kKillRound - 1);
  ASSERT_TRUE(proto.stabilized());
  const NodeId leader = proto.leader_node();
  engine.run_rounds(30);
  EXPECT_TRUE(proto.stabilized());
  EXPECT_EQ(proto.current_epoch(), 0u);
  EXPECT_EQ(proto.leader_node(), leader);
  EXPECT_FALSE(proto.crashed(leader));
  EXPECT_EQ(engine.telemetry().crashes(), engine.telemetry().recoveries());
}

TEST(StableLeader, SurvivesRandomChurn) {
  // Background churn (random crashes + recoveries) must not wedge the
  // protocol: with the crash floor keeping a quorum alive, the run keeps
  // re-converging; we only require it to be stabilized at SOME point late
  // in a long execution.
  StaticGraphProvider topo(make_clique(16));
  StableLeader proto(BlindGossip::shuffled_uids(16, 5), 16);
  EngineConfig cfg = stable_config(5);
  cfg.faults.crash_prob = 0.02;
  cfg.faults.recovery_prob = 0.25;
  cfg.faults.min_alive = 8;
  cfg.faults.seed = 23;
  Engine engine(topo, proto, cfg);
  bool ever_stabilized = false;
  for (Round r = 0; r < 2000 && !ever_stabilized; ++r) {
    engine.step();
    ever_stabilized = r > 100 && proto.stabilized();
  }
  EXPECT_TRUE(ever_stabilized);
  EXPECT_GT(engine.telemetry().crashes(), 0u);
  EXPECT_GT(engine.telemetry().recoveries(), 0u);
}

TEST(StableLeader, StabilizationRequiresLiveLeader) {
  StaticGraphProvider topo(make_clique(8));
  StableLeader proto(BlindGossip::shuffled_uids(8, 6), 24);
  Engine engine(topo, proto, stable_config(6));
  ASSERT_TRUE(run_until_stabilized(engine, 100000).converged);
  const NodeId leader = proto.leader_node();
  proto.on_crash(leader);
  EXPECT_FALSE(proto.stabilized());
  EXPECT_TRUE(proto.crashed(leader));
  EXPECT_NE(proto.leader_node(), leader);
}

TEST(StableLeader, CtorValidatesArguments) {
  EXPECT_THROW(StableLeader({1, 2, 2}), ContractError);     // duplicate UIDs
  EXPECT_THROW(StableLeader({}), ContractError);            // empty
  EXPECT_THROW(StableLeader({1, 2}, 0), ContractError);     // zero timeout
}

TEST(StableLeader, UidListMustMatchTopology) {
  StaticGraphProvider topo(make_clique(4));
  StableLeader proto({1, 2, 3});  // 3 uids for 4 nodes
  EXPECT_THROW(Engine(topo, proto, stable_config(1)), ContractError);
}

}  // namespace
}  // namespace mtm
