#include "protocols/pairwise_averaging.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

std::vector<double> ramp(NodeId n) {
  std::vector<double> v(n);
  for (NodeId u = 0; u < n; ++u) v[u] = static_cast<double>(u);
  return v;
}

TEST(PairwiseAveraging, ConvergesToAverageOnClique) {
  const NodeId n = 16;
  StaticGraphProvider topo(make_clique(n));
  PairwiseAveraging proto(ramp(n), 1e-9);
  EngineConfig cfg;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_NEAR(proto.value_of(u), proto.target_average(), 1e-6);
  }
  EXPECT_DOUBLE_EQ(proto.target_average(), 7.5);
}

TEST(PairwiseAveraging, ConvergesOnPath) {
  const NodeId n = 10;
  StaticGraphProvider topo(make_path(n));
  PairwiseAveraging proto(ramp(n), 1e-6);
  EngineConfig cfg;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 10000000);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(proto.spread(), 1e-6);
}

TEST(PairwiseAveraging, SumConservedEveryRound) {
  // The pair updates are symmetric averages of pre-connection values, so
  // the global sum is invariant (up to fp rounding).
  const NodeId n = 12;
  StaticGraphProvider topo(make_cycle(n));
  PairwiseAveraging proto(ramp(n), 1e-12);
  EngineConfig cfg;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  const double target_sum = proto.target_average() * n;
  for (int round = 0; round < 300; ++round) {
    engine.step();
    double sum = 0;
    for (NodeId u = 0; u < n; ++u) sum += proto.value_of(u);
    EXPECT_NEAR(sum, target_sum, 1e-9) << "round " << round;
  }
}

TEST(PairwiseAveraging, SpreadMonotoneNonIncreasing) {
  const NodeId n = 10;
  StaticGraphProvider topo(make_clique(n));
  PairwiseAveraging proto(ramp(n), 1e-12);
  EngineConfig cfg;
  cfg.seed = 4;
  Engine engine(topo, proto, cfg);
  double prev = proto.spread();
  for (int round = 0; round < 200; ++round) {
    engine.step();
    EXPECT_LE(proto.spread(), prev + 1e-12);
    prev = proto.spread();
  }
}

TEST(PairwiseAveraging, HandlesNegativeAndFractionalInputs) {
  StaticGraphProvider topo(make_clique(4));
  PairwiseAveraging proto({-10.0, 0.25, 3.5, -1.75}, 1e-9);
  EngineConfig cfg;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 100000);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(proto.value_of(0), -2.0, 1e-6);
}

TEST(PairwiseAveraging, UniformInputsImmediatelyStable) {
  StaticGraphProvider topo(make_path(3));
  PairwiseAveraging proto({5.0, 5.0, 5.0}, 1e-9);
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_TRUE(proto.stabilized());
}

TEST(PairwiseAveraging, WorksUnderChangingTopology) {
  const NodeId n = 12;
  RelabelingGraphProvider topo(make_cycle(n), 1, 6);
  PairwiseAveraging proto(ramp(n), 1e-6);
  EngineConfig cfg;
  cfg.seed = 6;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 10000000);
  EXPECT_TRUE(r.converged);
}

TEST(PairwiseAveraging, ValidatesInputs) {
  EXPECT_THROW(PairwiseAveraging({}, 1e-6), ContractError);
  EXPECT_THROW(PairwiseAveraging({1.0}, 0.0), ContractError);
  EXPECT_THROW(PairwiseAveraging({std::nan("")}, 1e-6), ContractError);
  StaticGraphProvider topo(make_path(3));
  PairwiseAveraging wrong_size({1.0, 2.0}, 1e-6);
  EXPECT_THROW(Engine(topo, wrong_size, EngineConfig{}), ContractError);
}

}  // namespace
}  // namespace mtm
