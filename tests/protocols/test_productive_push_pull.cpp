#include "protocols/productive_push_pull.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/ppush.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(ProductivePushPull, SpreadsOnClique) {
  StaticGraphProvider topo(make_clique(20));
  ProductivePushPull proto({0});
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 100000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 20; ++u) EXPECT_TRUE(proto.informed(u));
}

TEST(ProductivePushPull, AlternatesInitiative) {
  ProductivePushPull proto({0});
  StaticGraphProvider topo(make_clique(4));
  EngineConfig cfg;
  cfg.tag_bits = 1;
  Engine engine(topo, proto, cfg);
  Rng rng(2);
  std::vector<NeighborInfo> mixed{
      {1, ProductivePushPull::kUninformedTag},
      {2, ProductivePushPull::kInformedTag}};
  // Odd round: informed node 0 pushes (targets the uninformed tag).
  {
    const Decision d = proto.decide(0, 1, mixed, rng);
    ASSERT_TRUE(d.is_send());
    EXPECT_EQ(d.target, 1u);
  }
  // Even round: informed node 0 receives.
  EXPECT_FALSE(proto.decide(0, 2, mixed, rng).is_send());
  // Odd round: uninformed node 3 receives.
  EXPECT_FALSE(proto.decide(3, 1, mixed, rng).is_send());
  // Even round: uninformed node 3 pulls (targets the informed tag).
  {
    const Decision d = proto.decide(3, 2, mixed, rng);
    ASSERT_TRUE(d.is_send());
    EXPECT_EQ(d.target, 2u);
  }
}

TEST(ProductivePushPull, PullRoundAloneCanFinish) {
  // Two nodes, rumor at node 1. Round 1 (push): node 1 proposes to node 0.
  // Whether via push or pull, it must finish fast on P2.
  StaticGraphProvider topo(make_path(2));
  ProductivePushPull proto({1});
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 100);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.rounds, 2u);
}

TEST(ProductivePushPull, ComparableToPpushOnStarLine) {
  const Graph g = make_star_line(4, 8);
  auto measure = [&](auto make_proto) {
    double total = 0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      StaticGraphProvider topo(g);
      auto proto = make_proto();
      EngineConfig cfg;
      cfg.tag_bits = 1;
      cfg.seed = seed;
      Engine engine(topo, *proto, cfg);
      total +=
          static_cast<double>(run_until_stabilized(engine, 1u << 22).rounds);
    }
    return total / 6.0;
  };
  const double alternating = measure(
      [] { return std::make_unique<ProductivePushPull>(std::vector<NodeId>{0}); });
  const double push_only = measure(
      [] { return std::make_unique<Ppush>(std::vector<NodeId>{0}); });
  // Same capacity bound; within a small constant of each other.
  EXPECT_LT(alternating, 4.0 * push_only);
  EXPECT_LT(push_only, 4.0 * alternating);
}

TEST(ProductivePushPull, WorksUnderChangingTopology) {
  Rng gen(5);
  RelabelingGraphProvider topo(make_random_regular(16, 4, gen), 1, 5);
  ProductivePushPull proto({0});
  EngineConfig cfg;
  cfg.tag_bits = 1;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1u << 22);
  EXPECT_TRUE(r.converged);
}

TEST(ProductivePushPull, ValidatesSources) {
  EXPECT_THROW(ProductivePushPull({}), ContractError);
}

}  // namespace
}  // namespace mtm
