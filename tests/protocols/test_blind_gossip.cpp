#include "protocols/blind_gossip.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

/// A modest expander fixture for dynamic-topology tests.
Graph make_random_regular_fixture() {
  Rng rng(123);
  return make_random_regular(16, 4, rng);
}

RunResult elect(Graph g, std::uint64_t seed, Round max_rounds,
                BlindGossip** out = nullptr) {
  static thread_local std::unique_ptr<BlindGossip> proto;
  static thread_local std::unique_ptr<StaticGraphProvider> topo;
  topo = std::make_unique<StaticGraphProvider>(std::move(g));
  proto = std::make_unique<BlindGossip>(
      BlindGossip::shuffled_uids(topo->node_count(), seed));
  EngineConfig cfg;
  cfg.seed = seed;
  Engine engine(*topo, *proto, cfg);
  const RunResult r = run_until_stabilized(engine, max_rounds);
  if (out != nullptr) *out = proto.get();
  return r;
}

TEST(BlindGossip, ElectsMinimumOnClique) {
  BlindGossip* proto = nullptr;
  const RunResult r = elect(make_clique(16), 1, 100000, &proto);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(proto->leader_of(u), proto->target_leader());
  }
  EXPECT_EQ(proto->target_leader(), 0u);  // shuffled_uids uses 0..n-1
}

TEST(BlindGossip, ElectsMinimumOnPath) {
  BlindGossip* proto = nullptr;
  const RunResult r = elect(make_path(12), 2, 1000000, &proto);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 12; ++u) {
    EXPECT_EQ(proto->leader_of(u), 0u);
  }
}

TEST(BlindGossip, ElectsMinimumOnStarLine) {
  BlindGossip* proto = nullptr;
  const RunResult r = elect(make_star_line(4, 4), 3, 1000000, &proto);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(proto->leader_of(u), 0u);
  }
}

TEST(BlindGossip, UidsMustBeUnique) {
  EXPECT_THROW(BlindGossip({1, 2, 2}), ContractError);
  EXPECT_THROW(BlindGossip({}), ContractError);
}

TEST(BlindGossip, UidListMustMatchTopology) {
  StaticGraphProvider topo(make_clique(4));
  BlindGossip proto({1, 2, 3});  // 3 uids for 4 nodes
  EXPECT_THROW(Engine(topo, proto, EngineConfig{}), ContractError);
}

TEST(BlindGossip, MinSeenMonotoneNonIncreasing) {
  StaticGraphProvider topo(make_clique(8));
  BlindGossip proto(BlindGossip::shuffled_uids(8, 4));
  EngineConfig cfg;
  cfg.seed = 4;
  Engine engine(topo, proto, cfg);
  std::vector<Uid> prev(8);
  for (NodeId u = 0; u < 8; ++u) prev[u] = proto.min_seen(u);
  for (int round = 0; round < 100; ++round) {
    engine.step();
    for (NodeId u = 0; u < 8; ++u) {
      EXPECT_LE(proto.min_seen(u), prev[u]);
      prev[u] = proto.min_seen(u);
    }
  }
}

TEST(BlindGossip, LeaderIsAlwaysAKnownUid) {
  // The leader variable must always hold a UID present in the network.
  std::vector<Uid> uids{100, 50, 75, 25};
  const std::set<Uid> uid_set(uids.begin(), uids.end());
  StaticGraphProvider topo(make_cycle(4));
  BlindGossip proto(uids);
  Engine engine(topo, proto, EngineConfig{});
  for (int round = 0; round < 50; ++round) {
    engine.step();
    for (NodeId u = 0; u < 4; ++u) {
      EXPECT_TRUE(uid_set.count(proto.leader_of(u)) == 1);
    }
  }
}

TEST(BlindGossip, InitialLeaderIsSelf) {
  std::vector<Uid> uids{10, 20, 30};
  StaticGraphProvider topo(make_path(3));
  BlindGossip proto(uids);
  Engine engine(topo, proto, EngineConfig{});
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(proto.leader_of(u), uids[u]);
  }
  EXPECT_FALSE(proto.stabilized());
}

TEST(BlindGossip, SingleNodeImmediatelyStable) {
  BlindGossip proto({5});
  StaticGraphProvider topo(Graph::empty(1));
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_TRUE(proto.stabilized());
  EXPECT_EQ(proto.leader_of(0), 5u);
}

TEST(BlindGossip, WorksUnderTauOneChange) {
  // Footnote 2 of the paper: blind gossip needs no synchronization and
  // tolerates maximal topology change.
  RelabelingGraphProvider topo(make_random_regular_fixture(), 1, 6);
  BlindGossip proto(BlindGossip::shuffled_uids(16, 6));
  EngineConfig cfg;
  cfg.seed = 6;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  EXPECT_TRUE(r.converged);
}

TEST(BlindGossip, WorksWithAsyncActivations) {
  StaticGraphProvider topo(make_clique(10));
  BlindGossip proto(BlindGossip::shuffled_uids(10, 8));
  EngineConfig cfg;
  cfg.seed = 8;
  cfg.activation_rounds = {1, 5, 9, 2, 3, 1, 7, 4, 6, 8};
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 100000);
  EXPECT_TRUE(r.converged);
}

TEST(BlindGossip, ShuffledUidsArePermutation) {
  const auto uids = BlindGossip::shuffled_uids(50, 9);
  std::set<Uid> s(uids.begin(), uids.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

}  // namespace
}  // namespace mtm
