#include "protocols/k_gossip.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(KGossip, InitialKnowledgeIsOwnRumor) {
  StaticGraphProvider topo(make_clique(6));
  KGossip proto;
  Engine engine(topo, proto, EngineConfig{});
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(proto.known_count(u), 1u);
    EXPECT_TRUE(proto.knows(u, u));
    EXPECT_FALSE(proto.knows(u, (u + 1) % 6));
  }
  EXPECT_EQ(proto.coverage(), 6u);
  EXPECT_FALSE(proto.stabilized());
}

TEST(KGossip, CompletesOnClique) {
  const NodeId n = 16;
  StaticGraphProvider topo(make_clique(n));
  KGossip proto;
  EngineConfig cfg;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(proto.known_count(u), n);
  }
  EXPECT_EQ(proto.coverage(), static_cast<std::uint64_t>(n) * n);
}

TEST(KGossip, CompletesOnCycleAndStarLine) {
  for (auto&& [g, seed] : {std::pair{make_cycle(10), 2ull},
                           std::pair{make_star_line(3, 3), 3ull}}) {
    StaticGraphProvider topo(g);
    KGossip proto;
    EngineConfig cfg;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    const RunResult r = run_until_stabilized(engine, 10000000);
    EXPECT_TRUE(r.converged);
  }
}

TEST(KGossip, CoverageMonotone) {
  StaticGraphProvider topo(make_clique(10));
  KGossip proto;
  EngineConfig cfg;
  cfg.seed = 4;
  Engine engine(topo, proto, cfg);
  std::uint64_t prev = proto.coverage();
  for (int round = 0; round < 200; ++round) {
    engine.step();
    EXPECT_GE(proto.coverage(), prev);
    prev = proto.coverage();
  }
}

TEST(KGossip, SingleNodeTriviallyComplete) {
  StaticGraphProvider topo(Graph::empty(1));
  KGossip proto;
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_TRUE(proto.stabilized());
}

TEST(KGossip, SlowerThanSingleRumorSpreading) {
  // All-to-all dissemination pays (at least) a coupon-collector factor over
  // one rumor: compare stabilization on the same clique.
  const NodeId n = 24;
  auto k_rounds = [&](std::uint64_t seed) {
    StaticGraphProvider topo(make_clique(n));
    KGossip proto;
    EngineConfig cfg;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 1000000).rounds;
  };
  double total = 0;
  for (std::uint64_t s = 0; s < 4; ++s) total += static_cast<double>(k_rounds(s));
  // Single-rumor blind spreading on K24 takes ~25 rounds; all-to-all must
  // take several times that.
  EXPECT_GT(total / 4.0, 50.0);
}

TEST(KGossip, WorksUnderChangingTopology) {
  RelabelingGraphProvider topo(make_cycle(8), 1, 5);
  KGossip proto;
  EngineConfig cfg;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 10000000);
  EXPECT_TRUE(r.converged);
}

TEST(KGossip, BoundsChecked) {
  StaticGraphProvider topo(make_path(3));
  KGossip proto;
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_THROW(proto.known_count(3), ContractError);
  EXPECT_THROW(proto.knows(0, 3), ContractError);
}

}  // namespace
}  // namespace mtm
