#include "protocols/classical.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "protocols/blind_gossip.hpp"
#include "protocols/push_pull.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(ClassicalPushPull, SpreadsFastOnStar) {
  // The star is the classical model's showcase: the center accepts every
  // call, so the rumor reaches all leaves in a handful of rounds — exactly
  // the capability the mobile telephone model removes.
  StaticGraphProvider topo(make_star(64));
  ClassicalPushPull proto({0});
  EngineConfig cfg;
  cfg.classical_mode = true;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.rounds, 5u);  // every leaf calls the center w.p. 1 each round
}

TEST(ClassicalPushPull, MuchFasterThanMobileOnStar) {
  const NodeId n = 32;
  auto classical = [&](std::uint64_t seed) {
    StaticGraphProvider topo(make_star(n));
    ClassicalPushPull proto({0});
    EngineConfig cfg;
    cfg.classical_mode = true;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 100000).rounds;
  };
  auto mobile = [&](std::uint64_t seed) {
    StaticGraphProvider topo(make_star(n));
    PushPull proto({0});
    EngineConfig cfg;
    cfg.seed = seed;
    Engine engine(topo, proto, cfg);
    return run_until_stabilized(engine, 1000000).rounds;
  };
  double classical_total = 0, mobile_total = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    classical_total += static_cast<double>(classical(s));
    mobile_total += static_cast<double>(mobile(s));
  }
  // Mobile star spreading serializes on the center (one accept per round,
  // n-1 leaves): the gap is at least ~n/ log n >> 3.
  EXPECT_GT(mobile_total, 3 * classical_total);
}

TEST(ClassicalGossip, ElectsMinimum) {
  StaticGraphProvider topo(make_cycle(16));
  ClassicalGossip proto(BlindGossip::shuffled_uids(16, 2));
  EngineConfig cfg;
  cfg.classical_mode = true;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 100000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(proto.leader_of(u), proto.target_leader());
  }
}

TEST(ClassicalGossip, EveryNodeProposesEveryRound) {
  StaticGraphProvider topo(make_clique(8));
  ClassicalGossip proto(BlindGossip::shuffled_uids(8, 3));
  EngineConfig cfg;
  cfg.classical_mode = true;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  engine.step();
  EXPECT_EQ(engine.telemetry().proposals(), 8u);
  EXPECT_EQ(engine.telemetry().connections(), 8u);  // all accepted
}

TEST(ClassicalGossip, ValidatesUids) {
  EXPECT_THROW(ClassicalGossip({}), ContractError);
  EXPECT_THROW(ClassicalGossip({3, 3}), ContractError);
}

TEST(ClassicalPushPull, ValidatesSources) {
  EXPECT_THROW(ClassicalPushPull({}), ContractError);
}

}  // namespace
}  // namespace mtm
