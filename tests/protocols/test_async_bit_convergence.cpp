#include "protocols/async_bit_convergence.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/assert.hpp"
#include "core/bits.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

std::vector<Uid> uids_for(NodeId n) {
  std::vector<Uid> uids(n);
  for (NodeId u = 0; u < n; ++u) uids[u] = u + 7;
  return uids;
}

AsyncBitConvergenceConfig config_for(NodeId n, NodeId delta) {
  AsyncBitConvergenceConfig cfg;
  cfg.network_size_bound = n;
  cfg.max_degree_bound = delta;
  return cfg;
}

TEST(AsyncBitConvergence, AdvertisementWidthIsLogLogN) {
  AsyncBitConvergence proto(uids_for(16), config_for(16, 8));
  // k = ceil(2*log2(16)) = 8 -> position needs 3 bits, +1 value bit = 4.
  EXPECT_EQ(proto.tag_bit_count(), 8);
  EXPECT_EQ(proto.required_advertisement_bits(), 4);
}

TEST(AsyncBitConvergence, TagEncodingRoundTrip) {
  AsyncBitConvergence proto(uids_for(16), config_for(16, 8));
  for (int pos = 1; pos <= proto.tag_bit_count(); ++pos) {
    for (int bit = 0; bit <= 1; ++bit) {
      const Tag t = proto.encode_tag(pos, bit);
      EXPECT_EQ(proto.tag_position(t), pos);
      EXPECT_EQ(proto.tag_bit(t), bit);
      EXPECT_LT(t, Tag{1} << proto.required_advertisement_bits());
    }
  }
  EXPECT_THROW(proto.encode_tag(0, 0), ContractError);
  EXPECT_THROW(proto.encode_tag(proto.tag_bit_count() + 1, 0), ContractError);
  EXPECT_THROW(proto.encode_tag(1, 2), ContractError);
}

TEST(AsyncBitConvergence, ElectsWithSynchronizedStarts) {
  StaticGraphProvider topo(make_clique(12));
  AsyncBitConvergence proto(uids_for(12), config_for(12, 11));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 12; ++u) {
    EXPECT_EQ(proto.leader_of(u), proto.target_pair().uid);
  }
}

TEST(AsyncBitConvergence, ElectsWithStaggeredActivations) {
  StaticGraphProvider topo(make_clique(10));
  AsyncBitConvergence proto(uids_for(10), config_for(10, 9));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 2;
  cfg.activation_rounds = {1, 17, 5, 33, 9, 2, 21, 13, 29, 25};
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.rounds, 33u);  // cannot finish before the last activation
  EXPECT_EQ(r.rounds_after_last_activation, r.rounds - 32);
}

TEST(AsyncBitConvergence, ElectsUnderTauOneChange) {
  Rng gen(11);
  RelabelingGraphProvider topo(make_random_regular(16, 4, gen), 1, 11);
  AsyncBitConvergence proto(uids_for(16), config_for(16, 4));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 11;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 2000000);
  EXPECT_TRUE(r.converged);
}

TEST(AsyncBitConvergence, PositionFixedWithinLocalGroup) {
  StaticGraphProvider topo(make_clique(6));
  AsyncBitConvergence proto(uids_for(6), config_for(6, 5));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  Engine engine(topo, proto, cfg);
  Rng rng(3);
  const Round group = proto.group_length();
  // Advertise across one full group: position component must stay fixed.
  const Tag first = proto.advertise(0, 1, rng);
  for (Round r = 2; r <= group; ++r) {
    const Tag t = proto.advertise(0, r, rng);
    EXPECT_EQ(proto.tag_position(t), proto.tag_position(first));
  }
}

TEST(AsyncBitConvergence, PositionsSpreadOverGroups) {
  StaticGraphProvider topo(make_clique(6));
  AsyncBitConvergence proto(uids_for(6), config_for(6, 5));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  Engine engine(topo, proto, cfg);
  Rng rng(4);
  std::set<int> positions;
  const Round group = proto.group_length();
  for (Round g = 0; g < 64; ++g) {
    const Tag t = proto.advertise(0, g * group + 1, rng);
    positions.insert(proto.tag_position(t));
  }
  // 64 uniform draws over k = 6 positions: all hit w.h.p.
  EXPECT_GE(positions.size(), 4u);
}

TEST(AsyncBitConvergence, SelfStabilizesAfterComponentMerge) {
  // Two cliques run separately (simulated by a barbell where the bridge
  // appears later): we approximate by activating one clique 200 rounds
  // late on a barbell topology — the early component converges first and
  // the merged network must still converge to the single global minimum.
  const Graph g = make_barbell(6);
  const NodeId n = g.node_count();
  StaticGraphProvider topo(g);
  AsyncBitConvergence proto(uids_for(n), config_for(n, g.max_degree()));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 5;
  cfg.activation_rounds.assign(n, 1);
  for (NodeId u = 6; u < 12; ++u) cfg.activation_rounds[u] = 200;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(proto.leader_of(u), proto.target_pair().uid);
  }
}

TEST(AsyncBitConvergence, SmallestPairMonotone) {
  StaticGraphProvider topo(make_clique(8));
  AsyncBitConvergence proto(uids_for(8), config_for(8, 7));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 6;
  Engine engine(topo, proto, cfg);
  std::vector<IdPair> prev(8);
  for (NodeId u = 0; u < 8; ++u) prev[u] = proto.smallest_pair(u);
  for (int round = 0; round < 200; ++round) {
    engine.step();
    for (NodeId u = 0; u < 8; ++u) {
      EXPECT_FALSE(prev[u] < proto.smallest_pair(u));
      prev[u] = proto.smallest_pair(u);
    }
  }
}

TEST(AsyncBitConvergence, ValidatesConfig) {
  EXPECT_THROW(AsyncBitConvergence({}, config_for(4, 3)), ContractError);
  EXPECT_THROW(AsyncBitConvergence({2, 2}, config_for(4, 3)), ContractError);
  auto bad = config_for(1, 3);
  EXPECT_THROW(AsyncBitConvergence({1, 2}, bad), ContractError);
}

}  // namespace
}  // namespace mtm
