#include "protocols/leader_consensus.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

AsyncBitConvergenceConfig config_for(NodeId n, NodeId delta) {
  AsyncBitConvergenceConfig cfg;
  cfg.network_size_bound = n;
  cfg.max_degree_bound = delta;
  return cfg;
}

std::vector<Uid> uids_for(NodeId n) {
  std::vector<Uid> uids(n);
  for (NodeId u = 0; u < n; ++u) uids[u] = 500 + u;
  return uids;
}

std::vector<std::uint64_t> inputs_for(NodeId n) {
  std::vector<std::uint64_t> in(n);
  for (NodeId u = 0; u < n; ++u) in[u] = 9000 + 7ull * u;
  return in;
}

TEST(LeaderConsensus, AgreementAndValidityOnClique) {
  const NodeId n = 12;
  StaticGraphProvider topo(make_clique(n));
  LeaderConsensus proto(uids_for(n), inputs_for(n), config_for(n, n - 1));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  const std::uint64_t agreed = proto.decision_of(0);
  // Agreement: everyone decides the same value.
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(proto.decision_of(u), agreed);
  }
  // Validity: the decision is some node's input — specifically the eventual
  // leader's.
  EXPECT_EQ(agreed, proto.target_decision());
  const auto inputs = inputs_for(n);
  bool is_an_input = false;
  for (std::uint64_t v : inputs) is_an_input |= v == agreed;
  EXPECT_TRUE(is_an_input);
}

TEST(LeaderConsensus, DecisionFollowsLeader) {
  const NodeId n = 10;
  StaticGraphProvider topo(make_star_line(2, 4));
  LeaderConsensus proto(uids_for(n), inputs_for(n), config_for(n, 6));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  // The decided value is the input of the node whose UID was elected.
  const Uid leader = proto.leader_of(0);
  const auto uids = uids_for(n);
  const auto inputs = inputs_for(n);
  for (NodeId u = 0; u < n; ++u) {
    if (uids[u] == leader) {
      EXPECT_EQ(proto.decision_of(0), inputs[u]);
    }
  }
}

TEST(LeaderConsensus, WorksWithStaggeredActivations) {
  const NodeId n = 8;
  StaticGraphProvider topo(make_clique(n));
  LeaderConsensus proto(uids_for(n), inputs_for(n), config_for(n, n - 1));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 3;
  cfg.activation_rounds = {1, 9, 3, 21, 5, 15, 7, 11};
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 1; u < n; ++u) {
    EXPECT_EQ(proto.decision_of(u), proto.decision_of(0));
  }
}

TEST(LeaderConsensus, WorksUnderTopologyChange) {
  const NodeId n = 12;
  RelabelingGraphProvider topo(make_cycle(n), 1, 4);
  LeaderConsensus proto(uids_for(n), inputs_for(n), config_for(n, 2));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  cfg.seed = 4;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 5000000);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(proto.decision_of(5), proto.target_decision());
}

TEST(LeaderConsensus, InitialDecisionIsOwnInput) {
  const NodeId n = 4;
  StaticGraphProvider topo(make_clique(n));
  LeaderConsensus proto(uids_for(n), inputs_for(n), config_for(n, 3));
  EngineConfig cfg;
  cfg.tag_bits = proto.required_advertisement_bits();
  Engine engine(topo, proto, cfg);
  const auto inputs = inputs_for(n);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(proto.decision_of(u), inputs[u]);
  }
}

TEST(LeaderConsensus, ValidatesInputs) {
  EXPECT_THROW(
      LeaderConsensus(uids_for(4), inputs_for(3), config_for(4, 3)),
      ContractError);
  StaticGraphProvider topo(make_clique(4));
  LeaderConsensus wrong(uids_for(3), inputs_for(3), config_for(4, 3));
  EngineConfig cfg;
  cfg.tag_bits = wrong.required_advertisement_bits();
  EXPECT_THROW(Engine(topo, wrong, cfg), ContractError);
}

}  // namespace
}  // namespace mtm
