#include "protocols/push_pull.hpp"

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace mtm {
namespace {

TEST(PushPull, SpreadsOnClique) {
  StaticGraphProvider topo(make_clique(20));
  PushPull proto({0});
  EngineConfig cfg;
  cfg.seed = 1;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 100000);
  ASSERT_TRUE(r.converged);
  for (NodeId u = 0; u < 20; ++u) EXPECT_TRUE(proto.informed(u));
}

TEST(PushPull, SpreadsOnStarLine) {
  StaticGraphProvider topo(make_star_line(4, 4));
  PushPull proto({0});
  EngineConfig cfg;
  cfg.seed = 2;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  EXPECT_TRUE(r.converged);
}

TEST(PushPull, InformedCountMonotone) {
  StaticGraphProvider topo(make_cycle(12));
  PushPull proto({0});
  EngineConfig cfg;
  cfg.seed = 3;
  Engine engine(topo, proto, cfg);
  NodeId prev = proto.informed_count();
  EXPECT_EQ(prev, 1u);
  for (int round = 0; round < 200; ++round) {
    engine.step();
    EXPECT_GE(proto.informed_count(), prev);
    prev = proto.informed_count();
  }
}

TEST(PushPull, PullDirectionWorks) {
  // Two nodes, only the *other* one knows the rumor: when the uninformed
  // node's proposal connects, it pulls the rumor back.
  StaticGraphProvider topo(make_path(2));
  PushPull proto({1});
  EngineConfig cfg;
  cfg.seed = 4;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(proto.informed(0));
}

TEST(PushPull, MultipleSources) {
  StaticGraphProvider topo(make_path(9));
  PushPull proto({0, 8});  // both ends
  EngineConfig cfg;
  cfg.seed = 5;
  Engine engine(topo, proto, cfg);
  EXPECT_EQ(proto.informed_count(), 2u);
  const RunResult r = run_until_stabilized(engine, 100000);
  EXPECT_TRUE(r.converged);
}

TEST(PushPull, DuplicateSourcesCollapse) {
  StaticGraphProvider topo(make_path(3));
  PushPull proto({0, 0, 0});
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_EQ(proto.informed_count(), 1u);
}

TEST(PushPull, ValidatesSources) {
  EXPECT_THROW(PushPull({}), ContractError);
  StaticGraphProvider topo(make_path(3));
  PushPull proto({7});  // out of range for n = 3
  EXPECT_THROW(Engine(topo, proto, EngineConfig{}), ContractError);
}

TEST(PushPull, AllSourcesImmediatelyStable) {
  StaticGraphProvider topo(make_path(3));
  PushPull proto({0, 1, 2});
  Engine engine(topo, proto, EngineConfig{});
  EXPECT_TRUE(proto.stabilized());
}

TEST(PushPull, WorksUnderTauOneChange) {
  Rng rng(9);
  RelabelingGraphProvider topo(make_random_regular(16, 4, rng), 1, 9);
  PushPull proto({0});
  EngineConfig cfg;
  cfg.seed = 9;
  Engine engine(topo, proto, cfg);
  const RunResult r = run_until_stabilized(engine, 1000000);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace mtm
