// mtm_soak — long-horizon chaos soak for the self-healing election stack.
//
// Runs stable-leader for many segments, each segment rotating (or pinning)
// a chaos profile composed from the existing fault/adversary surface: node
// churn, burst link loss, periodic partitions, Byzantine spoofing. Every
// trial runs under the record-only InvariantMonitor; any hard safety
// violation fails the soak (exit 2). The sweep is driven by SweepRunner, so
// the soak inherits the whole resilience stack:
//
//   * --journal=PATH checkpoints every finished trial (squashed atomically
//     after each segment); kill -9 the process and --resume=PATH continues
//     exactly where it stopped, with aggregates byte-identical to an
//     uninterrupted run;
//   * --trial-deadline-ms / --retries / --backoff-ms evict wedged trials
//     cooperatively and quarantine seeds that never finish;
//   * SIGINT/SIGTERM flush the journal and emit a valid partial mtm-bench/1
//     report ("partial": true), exit 130.
//
// Examples:
//   mtm_soak --segments=6 --trials=8 --n=32 --journal=soak.journal
//   mtm_soak --resume=soak.journal --segments=6 --trials=8 --n=32
//   mtm_soak --profile=partition --segments=4 --out=BENCH_soak.json
//   mtm_soak --help
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/fabric.hpp"
#include "harness/interrupt.hpp"
#include "harness/storage.hpp"
#include "harness/sweep.hpp"
#include "obs/bench_report.hpp"
#include "sim/fault_cli.hpp"

namespace mtm {
namespace {

constexpr const char* kUsageHead = R"(mtm_soak: long-horizon chaos soak runner

options:
  --segments=S      chaos segments (checkpoint granularity)      [default 8]
  --trials=T        Monte-Carlo trials per segment               [default 8]
  --n=N             clique size                                  [default 32]
  --max-rounds=M    per-trial round cap                          [default 8192]
  --seed=S          master seed                                  [default 1]
  --threads=K       trial-level parallelism            [default hw threads]
  --profile=NAME    chaos profile per segment:
                    mixed (rotate) | churn | burst | partition |
                    byzantine                                    [default mixed]
  --epoch-timeout=T stable-leader re-election timeout            [default 24]
  --fail-on-violation=B  exit 2 on any hard invariant violation  [default true]
  --out=PATH        write the mtm-bench/1 report JSON
  --help            this text

resilience (shared flags; see docs/TESTING.md "Harness resilience"):
)";

constexpr const char* kUsageFabric = R"(
distributed fabric (shared flags; see docs/TESTING.md "Distributed fabric"):
)";

constexpr const char* kUsageStorage = R"(
storage chaos (shared flags; see docs/TESTING.md "Storage faults"):
)";

constexpr const char* kUsageTail = R"(
Exit status: 0 clean, 1 usage/config error, 2 invariant violation,
3 simulated storage power loss (--storage-chaos-crash-after fired; the
journal was rolled back to its durable prefix — --resume to continue),
130 interrupted by SIGINT/SIGTERM (partial artifacts were written).
)";

std::string usage() {
  return std::string(kUsageHead) + resilience_flags_help() + kUsageFabric +
         fabric_flags_help() + kUsageStorage + storage_chaos_flags_help() +
         kUsageTail;
}

/// The chaos profile a segment runs under. kMixed is resolved per segment
/// by rotation before reaching here.
enum class Profile { kChurn, kBurst, kPartition, kByzantine };

const char* profile_name(Profile p) {
  switch (p) {
    case Profile::kChurn: return "churn";
    case Profile::kBurst: return "burst";
    case Profile::kPartition: return "partition";
    case Profile::kByzantine: return "byzantine";
  }
  return "?";
}

/// Segment profiles are pinned presets, not flags: the soak's value is that
/// every run of a given (seed, profile) schedule is reproducible, and that
/// a resumed run cannot drift from the original's chaos plan.
FaultPlanConfig profile_faults(Profile p, NodeId n) {
  FaultPlanConfig faults;
  switch (p) {
    case Profile::kChurn:
      // Hold the *network-wide* churn rate constant (~0.64 crashes/round,
      // the n=32 calibration) instead of the per-node rate: at a flat 2%
      // per node, n=256 kills the leader every ~50 rounds — the same
      // timescale as a re-election contest — so elections never settle
      // and the agreement monitor fires on a protocol behaving correctly.
      faults.crash_prob = std::min(0.02, 0.64 / static_cast<double>(n));
      faults.recovery_prob = 0.3;
      faults.min_alive = std::max<NodeId>(n / 2, 1);
      break;
    case Profile::kBurst:
      faults.burst = burst_preset(2);  // harsh flapping channel
      break;
    case Profile::kPartition:
      faults.partition.mode = PartitionMode::kPeriodic;
      faults.partition.parts = 2;
      faults.partition.start = 8;
      faults.partition.duration = 8;
      faults.partition.period = 32;
      break;
    case Profile::kByzantine:
      break;  // chaos comes from the Byzantine plan instead
  }
  return faults;
}

ByzantinePlanConfig profile_byzantine(Profile p) {
  ByzantinePlanConfig byz;
  if (p == Profile::kByzantine) {
    byz.fraction = 0.1;
    byz.behavior = ByzBehavior::kMix;
  }
  return byz;
}

struct SoakConfig {
  std::size_t segments = 8;
  std::size_t trials = 8;
  NodeId n = 32;
  Round max_rounds = 8192;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  std::string profile = "mixed";
  Round epoch_timeout = 24;
};

/// Segment s's resolved profile under the configured rotation.
Profile segment_profile(const SoakConfig& cfg, std::size_t segment) {
  if (cfg.profile == "churn") return Profile::kChurn;
  if (cfg.profile == "burst") return Profile::kBurst;
  if (cfg.profile == "partition") return Profile::kPartition;
  if (cfg.profile == "byzantine") return Profile::kByzantine;
  if (cfg.profile == "mixed") {
    constexpr Profile kRotation[] = {Profile::kChurn, Profile::kBurst,
                                     Profile::kPartition, Profile::kByzantine};
    return kRotation[segment % 4];
  }
  throw std::invalid_argument("unknown --profile=" + cfg.profile);
}

/// Manifest config echo: exactly the knobs that define the experiment, so
/// the journal fingerprint accepts a resume iff the science would be
/// identical. Resilience flags (deadline, retries, journal path) are
/// deliberately NOT part of the fingerprint — they shape how the sweep
/// runs, never what it computes.
obs::RunManifest soak_manifest(const SoakConfig& cfg) {
  obs::RunManifest manifest =
      obs::make_run_manifest("mtm_soak", cfg.seed, cfg.threads);
  obs::JsonValue config = obs::JsonValue::object();
  config.set("segments", obs::JsonValue::unsigned_number(cfg.segments));
  config.set("trials", obs::JsonValue::unsigned_number(cfg.trials));
  config.set("n", obs::JsonValue::unsigned_number(cfg.n));
  config.set("max_rounds", obs::JsonValue::unsigned_number(cfg.max_rounds));
  config.set("profile", obs::JsonValue::string(cfg.profile));
  config.set("epoch_timeout",
             obs::JsonValue::unsigned_number(cfg.epoch_timeout));
  config.set("algo", obs::JsonValue::string("stable-leader"));
  config.set("topology", obs::JsonValue::string("clique"));
  manifest.config = std::move(config);
  return manifest;
}

// Stream-id tag for per-segment master seeds (fixed forever; resumed runs
// must derive the identical schedule).
constexpr std::uint64_t kSegmentSeedTag = 0x7365676dULL;  // "segm"

int run(const CliArgs& args) {
  SoakConfig cfg;
  cfg.segments = args.get_u64("segments", 8);
  cfg.trials = args.get_u64("trials", 8);
  cfg.n = args.get_u32("n", 32);
  cfg.max_rounds = args.get_u64("max-rounds", 8192);
  cfg.seed = args.get_u64("seed", 1);
  cfg.threads = args.get_u64("threads", ThreadPool::default_thread_count());
  cfg.profile = args.get_string("profile", "mixed");
  cfg.epoch_timeout = args.get_u64("epoch-timeout", 24);
  const bool fail_on_violation = args.get_bool("fail-on-violation", true);
  const std::string out_path = args.get_string("out", "");
  ResilienceOptions resilience = parse_resilience_flags(args);
  FabricOptions fabric = parse_fabric_flags(args, resilience);
  const bool fabric_role =
      fabric.workers > 0 || !fabric.listen.empty() || !fabric.connect.empty();
  const StorageFaultConfig storage_chaos =
      parse_storage_chaos_flags(args, resilience, fabric_role);
  args.check_unused();
  if (cfg.segments == 0 || cfg.trials == 0) {
    throw std::invalid_argument("--segments and --trials must be >= 1");
  }
  segment_profile(cfg, 0);  // validate --profile before any work

  install_interrupt_handler();
  resilience.interrupt = &interrupt_token();

  obs::MetricRegistry metrics;

  // Journal storage backend: a metrics-counting PosixStorage when
  // journaling, wrapped in the seeded FaultyStorage decorator when any
  // --storage-chaos-* fault is engaged. The chaos decorator sits over the
  // plain default backend (metrics live at the chaos layer, so torn/ENOSPC
  // counts and the op clock are what the journal actually experienced).
  PosixStorage metered_storage(&metrics);
  std::optional<FaultyStorage> faulty;
  if (!resilience.journal_path.empty()) {
    if (storage_chaos.any()) {
      faulty.emplace(default_storage(), storage_chaos, &metrics);
      resilience.storage = &*faulty;
    } else {
      resilience.storage = &metered_storage;
    }
  }

  // One sweep point per segment. Each point's body is a full stable-leader
  // trial under the segment's chaos profile, with the record-only invariant
  // monitor attached; the cancel token reaches run_until_stabilized so
  // deadlines and SIGINT evict between rounds.
  std::vector<SweepPoint> points;
  points.reserve(cfg.segments);
  for (std::size_t s = 0; s < cfg.segments; ++s) {
    const Profile profile = segment_profile(cfg, s);
    LeaderExperiment spec;
    spec.algo = LeaderAlgo::kStableLeader;
    spec.topology = static_topology(make_clique(cfg.n));
    spec.node_count = cfg.n;
    spec.controls.max_rounds = cfg.max_rounds;
    spec.controls.trials = cfg.trials;
    spec.controls.faults = profile_faults(profile, cfg.n);
    spec.byzantine = profile_byzantine(profile);
    spec.epoch_timeout = cfg.epoch_timeout;
    spec.check_invariants = true;
    SweepPoint point;
    point.label = profile_name(profile);
    point.trials = cfg.trials;
    point.master_seed = derive_seed(cfg.seed, {kSegmentSeedTag, s});
    point.body = [spec = std::move(spec)](std::uint64_t seed,
                                          const TrialCancel* cancel) {
      return run_leader_trial(spec, seed, cancel);
    };
    points.push_back(std::move(point));
  }

  const obs::RunManifest manifest = soak_manifest(cfg);

  if (!fabric.connect.empty()) {
    // Network-worker mode: dial the coordinator, execute leased trials, and
    // exit. There is no report to write — the coordinator owns the merged
    // aggregates; this process only contributes results over the wire.
    fabric.resilience = resilience;
    fabric.metrics = &metrics;
    const int rc = run_fabric_net_worker(points, manifest, fabric);
    std::cout << "net worker: done (exit " << rc << "), "
              << metrics.counter("fabric.reconnects").value()
              << " reconnect(s)";
    if (fabric.net_chaos.any()) {
      std::cout << ", wire chaos on (seed " << fabric.net_chaos.seed << ")";
    }
    std::cout << "\n";
    return rc;
  }

  SweepReport sweep;
  FabricStats fabric_stats;
  if (fabric.workers > 0 || !fabric.listen.empty()) {
    // Coordinator/worker mode: fork the workers (before any thread-pool
    // threads exist) or, with --listen, accept remote ones over TCP; the
    // coordinator merges either way. Aggregates are byte-identical to the
    // SweepRunner path below — same seeds, same (point, trial) slots, same
    // manifest.
    fabric.resilience = resilience;
    fabric.metrics = &metrics;
    FabricRunner runner(manifest, fabric);
    if (!fabric.listen.empty()) {
      // Printed (and flushed) before run() blocks so workers can scrape the
      // port from the coordinator's output even under an ephemeral :0 bind.
      std::cout << "fabric: listening on port " << runner.bound_port()
                << std::endl;
    }
    sweep = runner.run(points);
    fabric_stats = runner.stats();
    if (!fabric.listen.empty()) {
      std::cout << "fabric: network coordinator, ";
    } else {
      std::cout << "fabric: " << fabric.workers << " worker(s), ";
    }
    std::cout << fabric_stats.leases_granted << " lease(s) granted, "
              << fabric_stats.leases_expired << " expired, "
              << fabric_stats.trials_requeued << " trial(s) requeued, "
              << fabric_stats.worker_deaths << " worker death(s)";
    if (fabric_stats.chaos_kills > 0) {
      std::cout << " (" << fabric_stats.chaos_kills << " chaos kill(s))";
    }
    if (fabric_stats.reconnects > 0) {
      std::cout << ", " << fabric_stats.reconnects << " reconnect(s)";
    }
    if (fabric_stats.liveness_deaths > 0) {
      std::cout << ", " << fabric_stats.liveness_deaths
                << " liveness death(s)";
    }
    std::cout << "\n";
  } else {
    try {
      SweepRunner runner(manifest, resilience);
      sweep = runner.run(points, cfg.threads);
    } catch (const StorageCrash& crash) {
      // Simulated power loss fired (--storage-chaos-crash-after). Rewrite
      // the real files down to exactly what had reached stable storage, so
      // a follow-up --resume sees what a rebooted machine would see.
      if (faulty.has_value()) faulty->materialize_crash();
      std::cerr << "storage: simulated power loss after storage op "
                << crash.op_index()
                << "; journal rolled back to its durable prefix — resume "
                   "with --resume="
                << resilience.journal_path << "\n";
      return 3;
    }
  }
  if (faulty.has_value()) {
    // The op count is the crash-point enumeration bound: CI probes it with
    // a never-firing --storage-chaos-crash-after, then replays every N.
    std::cout << "storage ops: " << faulty->op_count() << "\n";
  }

  // Per-segment accounting table + bench series.
  ScalingSeries series("soak convergence", "segment");
  Table table({"segment", "profile", "converged", "censored", "violations",
               "split-brain", "mean-rounds"});
  std::uint64_t total_violations = 0;
  obs::JsonValue segments_json = obs::JsonValue::array();
  for (std::size_t s = 0; s < sweep.points.size(); ++s) {
    const std::vector<RunResult>& results = sweep.points[s];
    const ConvergenceSummary convergence = summarize_convergence(results);
    std::uint64_t violations = 0;
    std::uint64_t split_brain = 0;
    for (const RunResult& r : results) {
      violations += r.invariant_violations;
      split_brain += r.split_brain_rounds;
    }
    total_violations += violations;
    const Summary summary = summarize(convergence.rounds.empty()
                                          ? std::vector<double>{0.0}
                                          : convergence.rounds);
    table.row()
        .cell(static_cast<std::uint64_t>(s))
        .cell(sweep.labels[s])
        .cell(static_cast<std::uint64_t>(convergence.converged))
        .cell(static_cast<std::uint64_t>(convergence.censored))
        .cell(violations)
        .cell(split_brain)
        .cell(summary.mean, 1);
    if (convergence.converged > 0) {
      SeriesPoint point;
      point.x = static_cast<double>(s + 1);
      point.measured = summarize(convergence.rounds);
      point.predicted = std::log2(static_cast<double>(cfg.n)) + 1.0;
      point.label = sweep.labels[s];
      series.add(point);
    }
    obs::JsonValue seg = obs::JsonValue::object();
    seg.set("segment", obs::JsonValue::unsigned_number(s));
    seg.set("profile", obs::JsonValue::string(sweep.labels[s]));
    seg.set("converged",
            obs::JsonValue::unsigned_number(convergence.converged));
    seg.set("censored", obs::JsonValue::unsigned_number(convergence.censored));
    seg.set("violations", obs::JsonValue::unsigned_number(violations));
    seg.set("split_brain_rounds",
            obs::JsonValue::unsigned_number(split_brain));
    segments_json.push_back(std::move(seg));
  }
  table.print(std::cout, "soak segments");
  if (sweep.interrupted) {
    std::cout << "interrupted: " << sweep.points.size() << "/" << cfg.segments
              << " segment(s) completed; journal holds every finished trial\n";
  }
  if (sweep.resumed_trials > 0) {
    std::cout << "resumed " << sweep.resumed_trials
              << " trial(s) from the journal\n";
  }
  if (!sweep.quarantined.empty()) {
    std::cout << "quarantined " << sweep.quarantined.size() << " seed(s):";
    for (const QuarantinedTrial& q : sweep.quarantined) {
      std::cout << " " << q.seed << " (segment " << q.point << ", trial "
                << q.trial << ", " << q.attempts << " attempts)";
    }
    std::cout << "\n";
  }

  if (!out_path.empty()) {
    obs::BenchReport report;
    report.name = "soak";
    report.manifest = manifest;
    report.series.push_back(&series);
    // fabric.* counters land in the metrics section, which --same-aggregates
    // deliberately excludes: lease/requeue/death counts legitimately differ
    // between a fabric run and its single-process control.
    if (!metrics.empty()) report.metrics = &metrics;
    report.resilience.enabled = true;
    report.resilience.partial = sweep.interrupted;
    report.resilience.resumed_trials = sweep.resumed_trials;
    report.resilience.trials_recorded =
        sweep.resumed_trials + sweep.executed_trials;
    report.resilience.quarantined_seeds = sweep.quarantined_seeds();
    report.resilience.journal_fingerprint = sweep.journal_fingerprint;
    obs::JsonValue extra = obs::JsonValue::object();
    extra.set("segments", std::move(segments_json));
    report.extra = std::move(extra);
    if (!obs::write_json_atomic(out_path, report.to_json())) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (sweep.interrupted) return kInterruptExitCode;
  if (total_violations > 0) {
    std::cerr << "error: " << total_violations
              << " hard invariant violation(s) during the soak\n";
    if (fail_on_violation) return 2;
  }
  return 0;
}

}  // namespace
}  // namespace mtm

int main(int argc, char** argv) {
  try {
    mtm::CliArgs args(argc, argv);
    if (args.has("help")) {
      std::cout << mtm::usage();
      return 0;
    }
    return mtm::run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n" << mtm::usage();
    return 1;
  }
}
