// mtm_graph — generate, inspect, and export mobile-telephone-model
// topologies from the command line.
//
// Examples:
//   mtm_graph --generate=star-line --stars=4 --points=8 --out=mesh.txt
//   mtm_graph --inspect=mesh.txt
//   mtm_graph --inspect=mesh.txt --dot=mesh.dot
//   mtm_graph --generate=random-regular --n=32 --degree=4 --inspect=-
//
// --inspect prints n, m, Δ, diameter, and sampled upper bounds for the
// vertex expansion α and conductance Φ (exact values for n <= 20).
#include <fstream>
#include <iostream>
#include <memory>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "graph/conductance.hpp"
#include "graph/connectivity.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace mtm {
namespace {

constexpr const char* kUsage = R"(mtm_graph: topology generator / inspector

options:
  --generate=NAME   clique | cycle | path | star | star-line | grid |
                    hypercube | random-regular | binary-tree | barbell
  --n=N --stars=S --points=P --rows=R --cols=C --dim=D --degree=D --k=K
  --bridge=B        family shape parameters (as in mtm_sim)
  --seed=S          seed for random families                    [default 1]
  --out=PATH        write the generated graph as an edge list
  --inspect=PATH    read an edge list ('-' = the generated graph) and print
                    structural statistics
  --dot=PATH        write Graphviz DOT of the inspected graph
  --help            this text
)";

Graph generate(const CliArgs& args, const std::string& family) {
  const NodeId n = args.get_u32("n", 32);
  if (family == "clique") return make_clique(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "path") return make_path(n);
  if (family == "star") return make_star(n);
  if (family == "star-line") {
    return make_star_line(args.get_u32("stars", 4), args.get_u32("points", 8));
  }
  if (family == "grid") {
    return make_grid(args.get_u32("rows", 6), args.get_u32("cols", 6));
  }
  if (family == "hypercube") {
    return make_hypercube(static_cast<int>(args.get_u32("dim", 5)));
  }
  if (family == "random-regular") {
    Rng rng(args.get_u64("seed", 1));
    return make_random_regular(n, args.get_u32("degree", 4), rng);
  }
  if (family == "binary-tree") return make_binary_tree(n);
  if (family == "barbell") {
    return make_barbell(args.get_u32("k", 8), args.get_u32("bridge", 0));
  }
  throw std::invalid_argument("unknown --generate=" + family);
}

void inspect(const Graph& g) {
  Rng rng(0x1e5c);
  Table table({"n", "m", "max degree", "diameter", "alpha", "phi",
               "exactness"});
  const bool exact = g.node_count() <= 20;
  const double alpha = exact ? vertex_expansion_exact(g)
                             : vertex_expansion_upper_bound(g, rng);
  const double phi =
      exact ? conductance_exact(g) : conductance_upper_bound(g, rng);
  table.row()
      .cell(static_cast<std::uint64_t>(g.node_count()))
      .cell(static_cast<std::uint64_t>(g.edge_count()))
      .cell(static_cast<std::uint64_t>(g.max_degree()))
      .cell(is_connected(g) ? std::to_string(diameter(g)) : "disconnected")
      .cell(alpha, 5)
      .cell(phi, 5)
      .cell(exact ? "exact" : "sampled upper bound");
  table.print(std::cout, "topology statistics");
}

int run(const CliArgs& args) {
  const std::string family = args.get_string("generate", "");
  const std::string out = args.get_string("out", "");
  const std::string inspect_path = args.get_string("inspect", "");
  const std::string dot = args.get_string("dot", "");

  std::unique_ptr<Graph> generated;
  if (!family.empty()) {
    generated = std::make_unique<Graph>(generate(args, family));
    if (!out.empty()) {
      save_edge_list(out, *generated);
      std::cout << "wrote " << out << " (" << generated->node_count()
                << " nodes, " << generated->edge_count() << " edges)\n";
    }
  }
  args.check_unused();

  std::unique_ptr<Graph> inspected;
  if (inspect_path == "-") {
    if (generated == nullptr) {
      throw std::invalid_argument("--inspect=- requires --generate");
    }
    inspected = std::move(generated);
  } else if (!inspect_path.empty()) {
    inspected = std::make_unique<Graph>(load_edge_list(inspect_path));
  }
  if (inspected != nullptr) {
    inspect(*inspected);
    if (!dot.empty()) {
      std::ofstream os(dot);
      if (!os) throw std::runtime_error("cannot write " + dot);
      os << to_dot(*inspected);
      std::cout << "wrote " << dot << "\n";
    }
  } else if (generated == nullptr) {
    std::cout << kUsage;
  }
  return 0;
}

}  // namespace
}  // namespace mtm

int main(int argc, char** argv) {
  try {
    mtm::CliArgs args(argc, argv);
    if (args.has("help")) {
      std::cout << mtm::kUsage;
      return 0;
    }
    return mtm::run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n" << mtm::kUsage;
    return 1;
  }
}
