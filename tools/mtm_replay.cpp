// mtm_replay — differential-harness front end: replay a recorded failing
// fuzz tuple deterministically (with per-round trace dumps), or burn a
// bounded fuzz budget and emit shrunk failing tuples for CI artifacts.
//
// Examples:
//   mtm_replay --fuzz=500 --seed=7 --out=fuzz-failures.txt
//   mtm_replay --case="protocol=blind-gossip generator=star n=6 tau=0
//               seed=3 acceptance=uniform async=0 failure=0 rounds=8"
//               --trace                                    (one line)
//   mtm_replay --case="..." --mutation=drop-one-connection-bound
//   mtm_replay --help
//
// Exit status: 0 when every checked case matches the reference engine,
// 1 on any divergence (or usage error) — so CI can gate on it directly.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/cli.hpp"
#include "obs/manifest.hpp"
#include "sim/fault_cli.hpp"
#include "testing/fuzz.hpp"

namespace mtm {
namespace {

constexpr const char* kUsageHead = R"(mtm_replay: differential harness replay/fuzz driver

options:
  --case=TUPLE      replay one recorded fuzz tuple (the "key=value ..." form
                    printed by --fuzz failures) through Engine vs
                    ReferenceEngine and report the first divergence
  --trace           with --case: dump per-round events, counters and state
                    hashes while replaying
  --mutation=M      seed an intentional fault into the reference engine to
                    demonstrate detection (with --case or --fuzz):
                    none | drop-one-connection-bound |
                    accept-first-proposal | skip-payload-snapshot |
                    skip-restart-reset
  --fuzz=N          run N random differential cases               [default 0]
  --event           with --fuzz: sample event-scheduler dimensions too
                    (tuple keys scheduler/latency-dist/latency-mean/
                    clock-drift); event cases are checked as twin-scheduler
                    determinism plus invariants (no sync reference exists)
  --faults          with --fuzz: sample fault-plan dimensions too (node
                    churn, burst loss, edge degradation, crash oracles;
                    tuple keys crash/recover/burst/degrade/oracle/
                    oracle-every — replayed by --case automatically)
  --adversary       with --fuzz: sample partition and Byzantine dimensions
                    too (tuple keys partition/parts/partition-start/
                    partition-duration/partition-period/byz/byz-mode)
  --seed=S          fuzz stream seed                              [default 0xf0c5]
  --no-shrink       report original failing tuples without minimizing
  --out=PATH        append failing shrunk tuples to PATH (CI artifact)
  --manifest=PATH   with --case: echo the replay's run manifest (full config
                    including the scheduler spec) to PATH; when PATH already
                    holds a recorded manifest the replay refuses to run under
                    a different configuration and prints the manifest diff
  --help            this text

Every checked case also runs under the record-only invariant monitor
(sim/invariants.hpp); a hard safety violation is reported as an
"invariant" divergence and exits with status 1 like any other mismatch.

With --case, the shared fault flags override the tuple's fault dimensions,
and the scheduler keys (scheduler / latency-dist / latency-mean /
clock-drift) override the tuple's scheduler dimensions (the flag names ARE
the tuple keys — see sim/fault_cli.hpp):
)";

std::string usage() {
  return std::string(kUsageHead) + fault_flags_help();
}

testing::ReferenceMutation parse_mutation(const std::string& name) {
  using testing::ReferenceMutation;
  for (auto m : {ReferenceMutation::kNone,
                 ReferenceMutation::kDropOneConnectionBound,
                 ReferenceMutation::kAcceptFirstProposal,
                 ReferenceMutation::kSkipPayloadSnapshot,
                 ReferenceMutation::kSkipRestartReset}) {
    if (name == testing::to_string(m)) return m;
  }
  throw std::invalid_argument("unknown --mutation=" + name);
}

int replay_case(const CliArgs& args, const std::string& case_text) {
  const bool trace = args.has("trace");
  const auto mutation = parse_mutation(args.get_string("mutation", "none"));

  testing::FuzzCase fuzz_case = testing::parse_fuzz_case(case_text);
  // Shared fault flags override the tuple's fault dimensions — flag names
  // and tuple keys are the same strings by construction (sim/fault_cli.hpp),
  // so "what the fuzzer recorded" and "what the CLI accepts" cannot drift.
  fuzz_case.crash_prob = args.get_double("crash", fuzz_case.crash_prob);
  fuzz_case.recovery_prob = args.get_double("recover", fuzz_case.recovery_prob);
  fuzz_case.burst = static_cast<int>(
      args.get_u64("burst", static_cast<std::uint64_t>(fuzz_case.burst)));
  burst_preset(fuzz_case.burst);  // range-check the override
  fuzz_case.edge_degradation =
      args.get_double("degrade", fuzz_case.edge_degradation);
  if (args.has("oracle")) {
    fuzz_case.targeting =
        parse_crash_targeting(args.get_string("oracle", "none"));
    if (fuzz_case.target_every == 0) fuzz_case.target_every = 16;
  }
  fuzz_case.target_every = args.get_u64("oracle-every", fuzz_case.target_every);
  if (args.has("partition")) {
    fuzz_case.partition =
        parse_partition_mode(args.get_string("partition", "none"));
  }
  fuzz_case.parts = args.get_u32("parts", fuzz_case.parts);
  fuzz_case.partition_start =
      args.get_u64("partition-start", fuzz_case.partition_start);
  fuzz_case.partition_duration =
      args.get_u64("partition-duration", fuzz_case.partition_duration);
  fuzz_case.partition_period =
      args.get_u64("partition-period", fuzz_case.partition_period);
  fuzz_case.byz_fraction = args.get_double("byz", fuzz_case.byz_fraction);
  if (args.has("byz-mode")) {
    fuzz_case.byz_mode =
        parse_byz_behavior(args.get_string("byz-mode", "spoof"));
  }
  if (args.has("scheduler")) {
    fuzz_case.scheduler =
        parse_scheduler_kind(args.get_string("scheduler", "sync"));
  }
  if (args.has("latency-dist")) {
    fuzz_case.latency_dist =
        parse_latency_dist(args.get_string("latency-dist", "constant"));
  }
  fuzz_case.latency_mean =
      args.get_double("latency-mean", fuzz_case.latency_mean);
  fuzz_case.clock_drift = args.get_double("clock-drift", fuzz_case.clock_drift);
  const std::string manifest_path = args.get_string("manifest", "");
  args.check_unused();

  std::cout << "replaying: " << testing::to_string(fuzz_case) << "\n";
  if (mutation != testing::ReferenceMutation::kNone) {
    std::cout << "reference mutation: " << testing::to_string(mutation)
              << "\n";
  }

  const testing::Scenario scenario = testing::make_scenario(fuzz_case);

  if (!manifest_path.empty()) {
    // Echo the full configuration — scheduler spec included — so a replayed
    // case provably reproduces under the same execution model. A recorded
    // manifest that fingerprints differently means this invocation would
    // NOT reproduce that run; refuse and name the differing knobs.
    obs::RunManifest manifest =
        obs::make_run_manifest("mtm_replay", fuzz_case.seed, 1);
    obs::JsonValue config = obs::JsonValue::object();
    config.set("case", obs::JsonValue::string(testing::to_string(fuzz_case)));
    config.set("rounds", obs::JsonValue::unsigned_number(scenario.rounds));
    config.set("engine", obs::engine_config_json(scenario.config));
    manifest.config = std::move(config);
    const obs::JsonValue ours = manifest.to_json();
    std::ifstream recorded(manifest_path);
    if (recorded) {
      std::ostringstream buffer;
      buffer << recorded.rdbuf();
      const obs::JsonValue theirs = obs::parse_json(buffer.str());
      if (obs::manifest_fingerprint(theirs) !=
          obs::manifest_fingerprint(ours)) {
        std::cerr << "manifest mismatch: this replay would not reproduce "
                  << manifest_path << "\n"
                  << obs::manifest_diff(ours, theirs);
        return 1;
      }
    } else if (!obs::write_json_atomic(manifest_path, ours)) {
      std::cerr << "cannot write " << manifest_path << "\n";
      return 1;
    }
  }

  testing::DifferentialOptions options;
  options.mutation = mutation;
  options.check_invariants = true;
  if (trace) options.trace = &std::cout;
  const auto divergence = testing::run_differential(scenario, options);
  if (!divergence) {
    std::cout << "no divergence: engine matches reference over "
              << fuzz_case.rounds << " rounds\n";
    return 0;
  }
  std::cout << testing::to_string(*divergence) << "\n";
  return 1;
}

int run_fuzz_budget(const CliArgs& args, std::uint64_t budget) {
  testing::FuzzOptions options;
  options.cases = budget;
  options.seed = args.get_u64("seed", 0xf0c5);
  options.shrink = !args.has("no-shrink");
  options.with_faults = args.has("faults");
  options.with_adversary = args.has("adversary");
  options.with_event_scheduler = args.has("event");
  options.mutation = parse_mutation(args.get_string("mutation", "none"));
  const std::string out_path = args.get_string("out", "");
  args.check_unused();

  if (options.mutation != testing::ReferenceMutation::kNone) {
    std::cout << "reference mutation: " << testing::to_string(options.mutation)
              << "\n";
  }

  options.on_case = [](std::size_t index, const testing::FuzzCase&) {
    if (index > 0 && index % 100 == 0) {
      std::cout << "..." << index << " cases checked\n";
    }
  };
  const auto failures = testing::run_fuzz(options);
  std::cout << budget << " cases checked, " << failures.size()
            << " divergence(s)\n";
  if (failures.empty()) return 0;

  std::ofstream out;
  if (!out_path.empty()) {
    out.open(out_path, std::ios::app);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
  }
  for (const auto& failure : failures) {
    std::cout << "FAIL " << testing::to_string(failure.shrunk) << "\n  "
              << testing::to_string(failure.divergence) << "\n  (original: "
              << testing::to_string(failure.original) << ")\n";
    if (out) out << testing::to_string(failure.shrunk) << "\n";
  }
  if (out) std::cout << "wrote failing tuples to " << out_path << "\n";
  return 1;
}

int run(const CliArgs& args) {
  const std::string case_text = args.get_string("case", "");
  const std::uint64_t budget = args.get_u64("fuzz", 0);
  if (!case_text.empty() && budget > 0) {
    throw std::invalid_argument("--case and --fuzz are mutually exclusive");
  }
  if (!case_text.empty()) return replay_case(args, case_text);
  if (budget > 0) return run_fuzz_budget(args, budget);
  throw std::invalid_argument("one of --case or --fuzz is required");
}

}  // namespace
}  // namespace mtm

int main(int argc, char** argv) {
  try {
    mtm::CliArgs args(argc, argv);
    if (args.has("help")) {
      std::cout << mtm::usage();
      return 0;
    }
    return mtm::run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n" << mtm::usage();
    return 1;
  }
}
