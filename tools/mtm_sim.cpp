// mtm_sim — run any algorithm on any topology from the command line.
//
// Examples:
//   mtm_sim --algo=blind-gossip --topology=clique --n=64 --trials=16
//   mtm_sim --algo=bit-convergence --topology=star-line --stars=6
//           --points=32 --tau=4 --trials=8 --seed=7   (one line)
//   mtm_sim --algo=push-pull --topology=mobility --n=48 --radius=0.2
//           --speed=0.05 --trials=8                   (one line)
//   mtm_sim --help
//
// Prints a summary table of rounds-to-stabilize; with --csv=<path> also
// writes the per-trial samples.
#include <fstream>
#include <iostream>
#include <memory>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "harness/experiment.hpp"
#include "harness/fabric.hpp"
#include "harness/interrupt.hpp"
#include "harness/sweep.hpp"
#include "sim/fault_cli.hpp"
#include "sim/mobility.hpp"

namespace mtm {
namespace {

// The fault flags are shared with mtm_replay (sim/fault_cli.hpp) and
// spliced into the usage text at print time.
constexpr const char* kUsageHead = R"(mtm_sim: mobile telephone model simulator

options:
  --algo=NAME       blind-gossip | bit-convergence | async-bit-convergence |
                    classical-gossip | stable-leader | push-pull | ppush |
                    classical-push-pull
  --topology=NAME   clique | cycle | path | star | star-line | grid |
                    hypercube | random-regular | binary-tree | barbell |
                    mobility | file
  --n=N             node count (clique/cycle/path/star/random-regular/
                    binary-tree/mobility)        [default 64]
  --stars=S --points=P   star-line shape         [default 6 x 16]
  --rows=R --cols=C      grid shape              [default 8 x 8]
  --dim=D                hypercube dimension     [default 6]
  --degree=D             random-regular degree   [default 4]
  --k=K --bridge=B       barbell shape           [default 8, 0]
  --radius=R --speed=V   mobility disk model     [default 0.2, 0.05]
  --file=PATH            edge-list file (topology=file)
  --tau=T           relabel topology every T rounds (0 = static) [default 0]
  --trials=T        Monte-Carlo trials                           [default 16]
  --seed=S          master seed                                  [default 1]
  --max-rounds=M    per-trial round cap                          [default 2^24]
  --failure-prob=P  connection failure injection, P in [0, 1)    [default 0]
  --acceptance=X    uniform | smallest-id | largest-id           [default uniform]
)";

constexpr const char* kUsageTail =
    R"(  --epoch-timeout=T stable-leader re-election silence timeout    [default 24]
  --no-invariants   disable the per-trial safety monitor. Leader-election
                    algorithms run it by default (record-only); any hard
                    violation makes mtm_sim exit with status 2.
  --csv=PATH        also write per-trial rounds as CSV (converged trials;
                    censored trials get rounds=-1)
  --help            this text

With faults enabled, trials may legitimately fail to stabilize within
--max-rounds; the summary then covers converged trials only and reports
the convergence rate.
)";

constexpr const char* kUsageResilience = R"(
resilience + distributed fabric (shared flags; --journal/--resume run the
sweep through SweepRunner, --workers=N forks a coordinator/worker fabric;
see docs/TESTING.md):
)";

std::string usage() {
  return std::string(kUsageHead) + scheduler_flags_help() +
         fault_flags_help() + kUsageTail + kUsageResilience +
         resilience_flags_help() + fabric_flags_help();
}

Graph build_graph(const CliArgs& args, const std::string& topology,
                  std::uint64_t seed) {
  const NodeId n = args.get_u32("n", 64);
  if (topology == "clique") return make_clique(n);
  if (topology == "cycle") return make_cycle(n);
  if (topology == "path") return make_path(n);
  if (topology == "star") return make_star(n);
  if (topology == "star-line") {
    return make_star_line(args.get_u32("stars", 6), args.get_u32("points", 16));
  }
  if (topology == "grid") {
    return make_grid(args.get_u32("rows", 8), args.get_u32("cols", 8));
  }
  if (topology == "hypercube") {
    return make_hypercube(static_cast<int>(args.get_u32("dim", 6)));
  }
  if (topology == "random-regular") {
    Rng rng(derive_seed(seed, {0x746f706fULL}));
    return make_random_regular(n, args.get_u32("degree", 4), rng);
  }
  if (topology == "binary-tree") return make_binary_tree(n);
  if (topology == "barbell") {
    return make_barbell(args.get_u32("k", 8), args.get_u32("bridge", 0));
  }
  if (topology == "file") {
    return load_edge_list(args.get_string("file", ""));
  }
  throw std::invalid_argument("unknown --topology=" + topology);
}

int run(const CliArgs& args) {
  const std::string algo_name = args.get_string("algo", "blind-gossip");
  const std::string topology = args.get_string("topology", "clique");
  const Round tau = args.get_u64("tau", 0);
  const std::size_t trials = args.get_u64("trials", 16);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const Round max_rounds = args.get_u64("max-rounds", Round{1} << 24);
  const double failure_prob = args.get_double("failure-prob", 0.0);
  const SchedulerSpec scheduler = parse_scheduler_flags(args);
  const std::string csv = args.get_string("csv", "");
  const std::string acceptance_name = args.get_string("acceptance", "uniform");

  const FaultPlanConfig faults = parse_fault_flags(args);
  const ByzantinePlanConfig byzantine = parse_byz_flags(args);
  ResilienceOptions resilience = parse_resilience_flags(args);
  FabricOptions fabric = parse_fabric_flags(args, resilience);
  const bool check_invariants = !args.has("no-invariants");
  const Round epoch_timeout = args.get_u64("epoch-timeout", 24);
  // Note: the acceptance policy and failure probability flow through the
  // experiment harness into EngineConfig; the harness currently exposes
  // only failure injection, so non-uniform acceptance is rejected here
  // with a pointer at the library API.
  if (acceptance_name != "uniform") {
    throw std::invalid_argument(
        "--acceptance=" + acceptance_name +
        ": non-uniform policies are available via EngineConfig::acceptance "
        "in the library API (the Monte-Carlo harness runs the paper's "
        "uniform model)");
  }

  // Rumor algorithms go through the rumor harness; everything else is LE.
  const bool is_rumor = algo_name == "push-pull" || algo_name == "ppush" ||
                        algo_name == "classical-push-pull";

  TopologyFactory factory;
  NodeId node_count = 0;
  if (topology == "mobility") {
    MobilityConfig mob;
    mob.node_count = args.get_u32("n", 64);
    mob.radius = args.get_double("radius", 0.2);
    mob.speed = args.get_double("speed", 0.05);
    mob.tau = tau == 0 ? 1 : tau;
    node_count = mob.node_count;
    factory = [mob](std::uint64_t trial_seed) {
      MobilityConfig cfg = mob;
      cfg.seed = trial_seed;
      return std::make_unique<MobilityGraphProvider>(cfg);
    };
  } else {
    Graph g = build_graph(args, topology, seed);
    node_count = g.node_count();
    factory = tau == 0 ? static_topology(std::move(g))
                       : relabeling_topology(std::move(g), tau);
  }
  args.check_unused();

  // When journaling or the fabric is requested, the experiment runs as one
  // SweepPoint through the resilient sweep stack instead of the plain
  // harness fan-out. Seeds derive identically either way (trial_seed of the
  // master), so the per-trial results match the plain path.
  const bool sweep_mode = fabric.workers > 0 || !fabric.listen.empty() ||
                          !fabric.connect.empty() ||
                          !resilience.journal_path.empty();
  bool sweep_interrupted = false;
  int net_worker_rc = -1;
  const auto run_sweep_point = [&](SweepPoint point) {
    install_interrupt_handler();
    resilience.interrupt = &interrupt_token();
    obs::RunManifest manifest = obs::make_run_manifest("mtm_sim", seed, 1);
    obs::JsonValue config = obs::JsonValue::object();
    config.set("algo", obs::JsonValue::string(algo_name));
    config.set("topology", obs::JsonValue::string(topology));
    config.set("n", obs::JsonValue::unsigned_number(node_count));
    config.set("tau", obs::JsonValue::unsigned_number(tau));
    config.set("trials", obs::JsonValue::unsigned_number(trials));
    config.set("max_rounds", obs::JsonValue::unsigned_number(max_rounds));
    config.set("failure_prob", obs::JsonValue::number(failure_prob));
    // Scheduler echo: resuming a journal under a different scheduler spec
    // must fail the fingerprint check with a manifest diff, not silently
    // mix sync and event executions.
    config.set("scheduler", obs::scheduler_spec_json(scheduler));
    manifest.config = std::move(config);
    std::vector<SweepPoint> points;
    points.push_back(std::move(point));
    SweepReport sweep;
    if (!fabric.connect.empty()) {
      // Network worker: execute leased trials for a remote coordinator and
      // exit — the coordinator owns the merged results, so there is nothing
      // to summarize locally.
      fabric.resilience = resilience;
      net_worker_rc = run_fabric_net_worker(points, manifest, fabric);
      return std::vector<RunResult>{};
    }
    if (fabric.workers > 0 || !fabric.listen.empty()) {
      fabric.resilience = resilience;
      FabricRunner runner(manifest, fabric);
      if (!fabric.listen.empty()) {
        // Printed (and flushed) before run() blocks so workers can scrape
        // the port even under an ephemeral :0 bind.
        std::cout << "fabric: listening on port " << runner.bound_port()
                  << std::endl;
      }
      sweep = runner.run(points);
      const FabricStats& fs = runner.stats();
      std::cout << "fabric: "
                << (fabric.listen.empty()
                        ? std::to_string(fabric.workers) + " worker(s), "
                        : std::string("network coordinator, "))
                << fs.leases_granted << " lease(s) granted, "
                << fs.leases_expired << " expired, " << fs.trials_requeued
                << " trial(s) requeued, " << fs.worker_deaths
                << " worker death(s)";
      if (fs.reconnects > 0) std::cout << ", " << fs.reconnects
                                       << " reconnect(s)";
      if (fs.liveness_deaths > 0) std::cout << ", " << fs.liveness_deaths
                                            << " liveness death(s)";
      std::cout << "\n";
    } else {
      SweepRunner runner(manifest, resilience);
      sweep = runner.run(points, ThreadPool::default_thread_count());
    }
    if (sweep.resumed_trials > 0) {
      std::cout << "resumed " << sweep.resumed_trials
                << " trial(s) from the journal\n";
    }
    sweep_interrupted = sweep.interrupted;
    return sweep.points.empty() ? std::vector<RunResult>{}
                                : std::move(sweep.points[0]);
  };

  std::vector<RunResult> results;
  if (is_rumor) {
    if (byzantine.enabled()) {
      throw std::invalid_argument(
          "--byz applies to leader-election algorithms only");
    }
    RumorExperiment spec;
    if (algo_name == "push-pull") spec.algo = RumorAlgo::kPushPull;
    else if (algo_name == "ppush") spec.algo = RumorAlgo::kPpush;
    else spec.algo = RumorAlgo::kClassicalPushPull;
    spec.node_count = node_count;
    spec.topology = std::move(factory);
    spec.controls.max_rounds = max_rounds;
    spec.controls.trials = trials;
    spec.controls.seed = seed;
    spec.controls.threads = ThreadPool::default_thread_count();
    spec.controls.connection_failure_prob = failure_prob;
    spec.controls.scheduler = scheduler;
    spec.controls.faults = faults;
    if (sweep_mode) {
      SweepPoint point;
      point.label = algo_name;
      point.trials = trials;
      point.master_seed = seed;
      point.body = [spec = std::move(spec)](std::uint64_t trial_seed,
                                            const TrialCancel* cancel) {
        return run_rumor_trial(spec, trial_seed, cancel);
      };
      results = run_sweep_point(std::move(point));
    } else {
      results = run_rumor_experiment(spec);
    }
  } else {
    LeaderExperiment spec;
    if (algo_name == "blind-gossip") spec.algo = LeaderAlgo::kBlindGossip;
    else if (algo_name == "bit-convergence") spec.algo = LeaderAlgo::kBitConvergence;
    else if (algo_name == "async-bit-convergence") spec.algo = LeaderAlgo::kAsyncBitConvergence;
    else if (algo_name == "classical-gossip") spec.algo = LeaderAlgo::kClassicalGossip;
    else if (algo_name == "stable-leader") spec.algo = LeaderAlgo::kStableLeader;
    else throw std::invalid_argument("unknown --algo=" + algo_name);
    spec.node_count = node_count;
    spec.topology = std::move(factory);
    spec.controls.max_rounds = max_rounds;
    spec.controls.trials = trials;
    spec.controls.seed = seed;
    spec.controls.threads = ThreadPool::default_thread_count();
    spec.controls.connection_failure_prob = failure_prob;
    spec.controls.scheduler = scheduler;
    spec.controls.faults = faults;
    spec.epoch_timeout = epoch_timeout;
    spec.byzantine = byzantine;
    spec.check_invariants = check_invariants;
    if (sweep_mode) {
      SweepPoint point;
      point.label = algo_name;
      point.trials = trials;
      point.master_seed = seed;
      point.body = [spec = std::move(spec)](std::uint64_t trial_seed,
                                            const TrialCancel* cancel) {
        return run_leader_trial(spec, trial_seed, cancel);
      };
      results = run_sweep_point(std::move(point));
    } else {
      results = run_leader_experiment(spec);
    }
  }

  if (net_worker_rc >= 0) {
    std::cout << "net worker: done (exit " << net_worker_rc << ")\n";
    return net_worker_rc;
  }

  if (sweep_interrupted) {
    std::cout << "interrupted: every finished trial is in the journal; "
                 "--resume continues the run\n";
    return kInterruptExitCode;
  }

  // Fault plans can legitimately censor trials (a run may never stabilize
  // under churn); summarize converged trials and report the rate instead of
  // throwing like rounds_of() would.
  const ConvergenceSummary convergence = summarize_convergence(results);
  const Summary s = summarize(convergence.rounds.empty()
                                  ? std::vector<double>{0.0}
                                  : convergence.rounds);
  Table table({"algo", "topology", "n", "tau", "converged", "censored",
               "mean", "median", "p95", "max"});
  table.row()
      .cell(algo_name)
      .cell(topology)
      .cell(static_cast<std::uint64_t>(node_count))
      .cell(tau == 0 ? std::string("static") : std::to_string(tau))
      .cell(static_cast<std::uint64_t>(convergence.converged))
      .cell(static_cast<std::uint64_t>(convergence.censored))
      .cell(s.mean, 1)
      .cell(s.median, 1)
      .cell(s.p95, 1)
      .cell(s.max, 1);
  table.print(std::cout, "rounds to stabilize (converged trials)");
  if (convergence.censored > 0) {
    std::cout << "warning: " << convergence.censored << "/" << results.size()
              << " trial(s) censored at --max-rounds=" << max_rounds << "\n";
  }

  if (!csv.empty()) {
    std::ofstream out(csv);
    if (!out) {
      std::cerr << "cannot write " << csv << "\n";
      return 1;
    }
    out << "trial,rounds\n";
    for (std::size_t t = 0; t < results.size(); ++t) {
      if (results[t].converged) {
        out << t << ',' << results[t].rounds << '\n';
      } else {
        out << t << ",-1\n";
      }
    }
    // Drain before checking: ENOSPC/EIO discovered only at destructor-flush
    // time would be swallowed and "wrote ..." printed over a torn file.
    out.flush();
    if (!out) {
      std::cerr << "write failed: " << csv << "\n";
      return 1;
    }
    std::cout << "wrote " << csv << "\n";
  }

  // Safety-monitor summary (leader algorithms; see --no-invariants). A hard
  // violation means the protocol broke agreement/validity/monotonicity — the
  // run "succeeded" numerically but the result cannot be trusted, so the
  // exit status says so for scripts and CI.
  if (!is_rumor && check_invariants) {
    std::uint64_t violations = 0;
    std::uint64_t split_brain = 0;
    for (const RunResult& r : results) {
      violations += r.invariant_violations;
      split_brain += r.split_brain_rounds;
    }
    std::cout << "invariants: " << violations << " violation(s), "
              << split_brain << " split-brain round(s) across "
              << results.size() << " trial(s)\n";
    if (violations > 0) {
      std::cerr << "error: safety invariant violated\n";
      return 2;
    }
  }
  return 0;
}

}  // namespace
}  // namespace mtm

int main(int argc, char** argv) {
  try {
    mtm::CliArgs args(argc, argv);
    if (args.has("help")) {
      std::cout << mtm::usage();
      return 0;
    }
    return mtm::run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n" << mtm::usage();
    return 1;
  }
}
