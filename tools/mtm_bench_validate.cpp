// mtm_bench_validate — schema-check unified bench JSON artifacts.
//
// Examples:
//   mtm_bench_validate BENCH_engine_throughput.json
//   mtm_bench_validate BENCH_*.json        (shell-expanded; all must pass)
//   mtm_bench_validate --help
//
// Exit status: 0 when every file validates against the mtm-bench/1 schema
// (obs/bench_report.hpp), 1 otherwise — the bench-smoke CI job gates on it.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"

namespace {

constexpr const char* kUsage = R"(mtm_bench_validate: bench JSON schema checker

usage: mtm_bench_validate FILE...

Validates each FILE against the unified bench-output schema (mtm-bench/1):
schema/name/manifest/series are required; phases, metrics and extra are
optional but type-checked. Prints every violation and exits non-zero if
any file fails.
)";

int validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::vector<std::string> errors =
      mtm::obs::validate_bench_report_text(text.str());
  if (errors.empty()) {
    std::cout << path << ": ok\n";
    return 0;
  }
  for (const std::string& error : errors) {
    std::cerr << path << ": " << error << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    files.push_back(arg);
  }
  if (files.empty()) {
    std::cerr << kUsage;
    return 1;
  }
  int failures = 0;
  for (const std::string& file : files) failures += validate_file(file);
  return failures == 0 ? 0 : 1;
}
