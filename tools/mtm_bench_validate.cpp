// mtm_bench_validate — schema-check unified bench JSON artifacts.
//
// Examples:
//   mtm_bench_validate BENCH_engine_throughput.json
//   mtm_bench_validate BENCH_*.json        (shell-expanded; all must pass)
//   mtm_bench_validate --journal=soak.journal BENCH_soak.json
//   mtm_bench_validate --same-aggregates control.json resumed.json
//   mtm_bench_validate --ref-journal=fab.journal fab.journal.w0 fab.journal.w1
//   mtm_bench_validate --help
//
// Exit status: 0 when every file validates against the mtm-bench/1 schema
// (obs/bench_report.hpp), 1 otherwise — the bench-smoke CI job gates on it.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/checkpoint.hpp"
#include "obs/bench_report.hpp"

namespace {

constexpr const char* kUsage = R"(mtm_bench_validate: bench JSON schema checker

usage: mtm_bench_validate [--journal=PATH] FILE...
       mtm_bench_validate --same-aggregates FILE_A FILE_B
       mtm_bench_validate --ref-journal=REF SHARD...

Validates each FILE against the unified bench-output schema (mtm-bench/1):
schema/name/manifest/series are required; phases, metrics, extra and the
resilience echo (partial / resumed_trials / trials_recorded /
quarantined_seeds / journal_fingerprint) are optional but type-checked.

--journal=PATH cross-checks each FILE against a trial journal
(mtm-journal/1): the report's journal_fingerprint and trials_recorded must
match the journal's header fingerprint and record count — a mismatch means
the report and journal describe different runs, and the tool hard-fails.

--same-aggregates compares the deterministic sections of two reports
(manifest, series, extra) and fails when they differ — the resume-smoke CI
check that an interrupted-then-resumed sweep reproduced the uninterrupted
control byte-for-byte. Wall-clock sections (phases, metrics) and the
resilience counters are excluded: they legitimately differ across runs.

--ref-journal=REF treats each SHARD as a fabric worker's shard journal
(<journal>.w<i>) and verifies the shards against the coordinator's merged
journal REF: every shard must carry REF's manifest fingerprint, the union
of shard (point, trial) keys must be a permutation of REF's key set (no
lost keys, no unknown keys), and every REF record must be byte-identical
to at least one shard record for its key. Duplicate keys across (or
within) shards are legal — they are re-executions after a lease expiry or
worker death — as long as they agree with REF.

Prints every violation and exits non-zero if any check fails.
)";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(path + ": cannot open");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

int validate_file(const std::string& path, const std::string& journal_path) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  const std::vector<std::string> errors =
      mtm::obs::validate_bench_report_text(text);
  if (!errors.empty()) {
    for (const std::string& error : errors) {
      std::cerr << path << ": " << error << "\n";
    }
    return 1;
  }
  if (!journal_path.empty()) {
    try {
      const mtm::TrialJournal::Contents journal =
          mtm::TrialJournal::load(journal_path);
      const mtm::obs::JsonValue doc = mtm::obs::parse_json(text);
      const mtm::obs::JsonValue* fp = doc.find("journal_fingerprint");
      if (fp == nullptr || !fp->is_string() ||
          fp->as_string() != journal.fingerprint) {
        std::cerr << path << ": journal_fingerprint does not match "
                  << journal_path << " (" << journal.fingerprint << ")\n";
        return 1;
      }
      const mtm::obs::JsonValue* recorded = doc.find("trials_recorded");
      const std::uint64_t journal_count = journal.records.size();
      if (recorded == nullptr ||
          recorded->kind() != mtm::obs::JsonValue::Kind::kUnsigned ||
          recorded->as_u64() != journal_count) {
        std::cerr << path << ": trials_recorded disagrees with " << journal_path
                  << " (journal holds " << journal_count << " record(s))\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << journal_path << ": " << e.what() << "\n";
      return 1;
    }
  }
  std::cout << path << ": ok\n";
  return 0;
}

/// Compact dump of one deterministic section ("" when absent).
std::string section_dump(const mtm::obs::JsonValue& doc, const char* key) {
  const mtm::obs::JsonValue* v = doc.find(key);
  return v == nullptr ? std::string() : v->dump();
}

int same_aggregates(const std::string& path_a, const std::string& path_b) {
  mtm::obs::JsonValue a = mtm::obs::JsonValue::object();
  mtm::obs::JsonValue b = mtm::obs::JsonValue::object();
  try {
    a = mtm::obs::parse_json(read_file(path_a));
    b = mtm::obs::parse_json(read_file(path_b));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  int failures = 0;
  for (const char* key : {"manifest", "series", "extra"}) {
    if (section_dump(a, key) != section_dump(b, key)) {
      std::cerr << "aggregate section \"" << key << "\" differs between "
                << path_a << " and " << path_b << "\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << path_a << " and " << path_b << ": aggregates identical\n";
    return 0;
  }
  return 1;
}

int shard_permutation(const std::string& ref_path,
                      const std::vector<std::string>& shard_paths) {
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  mtm::TrialJournal::Contents ref;
  try {
    ref = mtm::TrialJournal::load(ref_path);
  } catch (const std::exception& e) {
    std::cerr << ref_path << ": " << e.what() << "\n";
    return 1;
  }
  int failures = 0;
  // Key -> every serialized shard record seen for it (across all shards).
  std::map<Key, std::vector<std::string>> shard_lines;
  for (const std::string& path : shard_paths) {
    mtm::TrialJournal::Contents shard;
    try {
      shard = mtm::TrialJournal::load(path);
    } catch (const std::exception& e) {
      std::cerr << path << ": " << e.what() << "\n";
      ++failures;
      continue;
    }
    if (shard.fingerprint != ref.fingerprint) {
      std::cerr << path << ": manifest fingerprint " << shard.fingerprint
                << " does not match " << ref_path << " ("
                << ref.fingerprint << ")\n";
      ++failures;
      continue;
    }
    for (const mtm::JournalRecord& r : shard.records) {
      shard_lines[Key{r.point, r.trial}].push_back(
          mtm::journal_record_line(r));
    }
  }
  // First-wins per key, matching SweepRunner/fabric merge semantics.
  std::map<Key, std::string> ref_lines;
  for (const mtm::JournalRecord& r : ref.records) {
    ref_lines.emplace(Key{r.point, r.trial}, mtm::journal_record_line(r));
  }
  for (const auto& [key, line] : ref_lines) {
    const auto it = shard_lines.find(key);
    if (it == shard_lines.end()) {
      std::cerr << ref_path << ": record (point " << key.first << ", trial "
                << key.second << ") appears in no shard (lost key)\n";
      ++failures;
      continue;
    }
    if (std::find(it->second.begin(), it->second.end(), line) ==
        it->second.end()) {
      std::cerr << ref_path << ": record (point " << key.first << ", trial "
                << key.second
                << ") differs from every shard record for that key\n";
      ++failures;
    }
  }
  for (const auto& [key, lines] : shard_lines) {
    if (ref_lines.find(key) == ref_lines.end()) {
      std::cerr << "shards carry (point " << key.first << ", trial "
                << key.second << ") which " << ref_path
                << " never recorded (unknown key)\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << shard_paths.size() << " shard(s) are a permutation of "
              << ref_path << " (" << ref_lines.size() << " unique key(s))\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string journal_path;
  std::string ref_journal_path;
  bool compare = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg.rfind("--journal=", 0) == 0) {
      journal_path = arg.substr(10);
      continue;
    }
    if (arg.rfind("--ref-journal=", 0) == 0) {
      ref_journal_path = arg.substr(14);
      continue;
    }
    if (arg == "--same-aggregates") {
      compare = true;
      continue;
    }
    files.push_back(arg);
  }
  if (compare) {
    if (files.size() != 2 || !journal_path.empty() ||
        !ref_journal_path.empty()) {
      std::cerr << "--same-aggregates takes exactly two report files\n"
                << kUsage;
      return 1;
    }
    return same_aggregates(files[0], files[1]);
  }
  if (!ref_journal_path.empty()) {
    if (!journal_path.empty()) {
      std::cerr << "--ref-journal and --journal are mutually exclusive\n"
                << kUsage;
      return 1;
    }
    return shard_permutation(ref_journal_path, files);
  }
  if (files.empty()) {
    std::cerr << kUsage;
    return 1;
  }
  int failures = 0;
  for (const std::string& file : files) {
    failures += validate_file(file, journal_path);
  }
  return failures == 0 ? 0 : 1;
}
